// obs::MemoryLedger unit semantics: tag interning, charge/release with the
// exact conservation invariant (charged - released == current), dot-aware
// prefix queries, high-water marks (carry-over by default, reset_high_water
// to restart), ScopedMemTag path joining, MemCharge bind/copy/move rules,
// the MR memory-savings arithmetic shared by the measured and analytic
// models, and the first-rank-to-OOM prediction.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/memory.hpp"
#include "src/obs/rank_recorder.hpp"

namespace mrpic::obs {
namespace {

TEST(Memory, LedgerInternsDenseStableIds) {
  MemoryLedger ledger;
  // The ledger is born with the "untagged" account at id 0.
  EXPECT_EQ(ledger.intern("untagged"), 0);
  const int a = ledger.intern("fields.level0.E");
  const int b = ledger.intern("particles.electrons.level0");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  // Re-interning returns the same id, never a new account.
  EXPECT_EQ(ledger.intern("fields.level0.E"), a);
  EXPECT_EQ(ledger.snapshot().size(), 3u);
}

TEST(Memory, ChargeReleaseConservationIsExact) {
  MemoryLedger ledger;
  const int a = ledger.intern("a");
  const int b = ledger.intern("b");
  ledger.charge(a, 1000);
  ledger.charge(b, 250);
  ledger.release(a, 400);
  ledger.charge(a, 7);
  // The invariant the ctest gate is named for: bytes never leak between
  // charge and release, to the byte.
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
  EXPECT_EQ(ledger.current("a"), 607);
  EXPECT_EQ(ledger.current("b"), 250);
  EXPECT_EQ(ledger.total_current(), 857);
  EXPECT_EQ(ledger.total_alloc_count(), 3);
  // Unknown tags read as empty, not as errors.
  EXPECT_EQ(ledger.current("nope"), 0);
  EXPECT_EQ(ledger.high_water("nope"), 0);
}

TEST(Memory, NegativeAmountsFlipDirection) {
  MemoryLedger ledger;
  const int a = ledger.intern("a");
  ledger.charge(a, -100);  // a negative charge is a release...
  EXPECT_EQ(ledger.current("a"), -100);
  ledger.release(a, -300); // ...and a negative release is a charge
  EXPECT_EQ(ledger.current("a"), 200);
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
}

TEST(Memory, PrefixQueriesRespectDotBoundaries) {
  MemoryLedger ledger;
  ledger.charge(ledger.intern("fields"), 1);
  ledger.charge(ledger.intern("fields.level0.E"), 10);
  ledger.charge(ledger.intern("fields.level0.B"), 100);
  ledger.charge(ledger.intern("fieldsX"), 1000); // not under "fields"
  EXPECT_EQ(ledger.current_prefix("fields"), 111);
  EXPECT_EQ(ledger.current_prefix("fields.level0"), 110);
  EXPECT_EQ(ledger.current_prefix("fields.level0.E"), 10);
  EXPECT_EQ(ledger.current_prefix("fieldsX"), 1000);
  EXPECT_EQ(ledger.current_prefix("fie"), 0);
  EXPECT_EQ(ledger.high_water_prefix("fields"), 111);
}

TEST(Memory, HighWaterCarriesOverUntilReset) {
  MemoryLedger ledger;
  const int a = ledger.intern("a");
  ledger.charge(a, 1000);
  ledger.release(a, 600);
  // Default semantics: the mark remembers the historical peak even after the
  // occupancy drops (resil replay relies on this to report the campaign-wide
  // worst footprint across crash -> shrink -> replay incarnations).
  EXPECT_EQ(ledger.current("a"), 400);
  EXPECT_EQ(ledger.high_water("a"), 1000);
  EXPECT_EQ(ledger.total_high_water(), 1000);

  // reset_high_water() restarts the marks from the *current* occupancy (for
  // per-incarnation or per-bench-case peaks) without touching conservation.
  ledger.reset_high_water();
  EXPECT_EQ(ledger.high_water("a"), 400);
  EXPECT_EQ(ledger.total_high_water(), 400);
  ledger.charge(a, 50);
  EXPECT_EQ(ledger.high_water("a"), 450);
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
}

TEST(Memory, ScopedTagNestingJoinsWithDots) {
  EXPECT_FALSE(ScopedMemTag::active());
  EXPECT_EQ(ScopedMemTag::current_path(), "");
  EXPECT_EQ(ScopedMemTag::current_id(), 0); // "untagged"
  {
    ScopedMemTag outer("fields.level0");
    EXPECT_TRUE(ScopedMemTag::active());
    EXPECT_EQ(ScopedMemTag::current_path(), "fields.level0");
    {
      ScopedMemTag inner("E");
      EXPECT_EQ(ScopedMemTag::current_path(), "fields.level0.E");
      EXPECT_GT(ScopedMemTag::current_id(), 0);
    }
    EXPECT_EQ(ScopedMemTag::current_path(), "fields.level0");
  }
  EXPECT_FALSE(ScopedMemTag::active());
}

// The MemCharge tests run against the process-global ledger (that is the
// whole point of the handle), so every tag is test-unique and each check
// reads deltas of that tag only.
TEST(Memory, MemChargeBindsOnFirstUpdateAndSticks) {
  auto& ledger = memory_ledger();
  const std::string tag = "memtest.bind.scope";
  {
    MemCharge c;
    EXPECT_FALSE(c.bound());
    c.update(0); // nothing to own yet: stays unbound
    EXPECT_FALSE(c.bound());
    {
      ScopedMemTag scope("memtest.bind");
      ScopedMemTag leaf("scope");
      c.update(128); // first nonzero update binds to the active path
    }
    EXPECT_TRUE(c.bound());
    EXPECT_EQ(ledger.current(tag), 128);
    {
      // Re-filling inside another scope does NOT re-home the bytes: the
      // original account absorbs the delta.
      ScopedMemTag elsewhere("memtest.elsewhere");
      c.update(200);
    }
    EXPECT_EQ(ledger.current(tag), 200);
    EXPECT_EQ(ledger.current("memtest.elsewhere"), 0);
    c.update(50); // shrink releases the delta
    EXPECT_EQ(ledger.current(tag), 50);
  }
  // Destruction returns every byte.
  EXPECT_EQ(ledger.current(tag), 0);
  EXPECT_EQ(ledger.high_water(tag), 200);
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
}

TEST(Memory, MemChargeExplicitTagConstructor) {
  auto& ledger = memory_ledger();
  {
    MemCharge c("memtest.explicit");
    EXPECT_TRUE(c.bound());
    EXPECT_EQ(c.bytes(), 0);
    ScopedMemTag scope("memtest.ignored"); // explicit tag wins over the scope
    c.update(64);
    EXPECT_EQ(ledger.current("memtest.explicit"), 64);
    EXPECT_EQ(ledger.current("memtest.ignored"), 0);
  }
  EXPECT_EQ(ledger.current("memtest.explicit"), 0);
}

TEST(Memory, MemChargeCopySemantics) {
  auto& ledger = memory_ledger();
  {
    MemCharge src("memtest.copy.src");
    src.update(100);
    // Copy-construction with no active scope inherits the source account.
    MemCharge dup(src);
    EXPECT_EQ(ledger.current("memtest.copy.src"), 200);
    // Copy-construction under a scope binds to the scope instead (a scratch
    // copy made inside the health probe is health memory, not fields).
    {
      ScopedMemTag scope("memtest.copy.scratch");
      MemCharge scratch(src);
      EXPECT_EQ(ledger.current("memtest.copy.scratch"), 100);
      EXPECT_EQ(ledger.current("memtest.copy.src"), 200);
    }
    EXPECT_EQ(ledger.current("memtest.copy.scratch"), 0);
    // Copy-assignment into an already-bound handle keeps its own account.
    MemCharge other("memtest.copy.other");
    other.update(10);
    other = src;
    EXPECT_EQ(other.bytes(), 100);
    EXPECT_EQ(ledger.current("memtest.copy.other"), 100);
    EXPECT_EQ(ledger.current("memtest.copy.src"), 200);
  }
  EXPECT_EQ(ledger.current("memtest.copy.src"), 0);
  EXPECT_EQ(ledger.current("memtest.copy.other"), 0);
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
}

TEST(Memory, MemChargeMoveTransfersOwnership) {
  auto& ledger = memory_ledger();
  {
    MemCharge a("memtest.move");
    a.update(300);
    MemCharge b(std::move(a));
    EXPECT_EQ(a.bytes(), 0);
    EXPECT_FALSE(a.bound());
    EXPECT_EQ(b.bytes(), 300);
    EXPECT_EQ(ledger.current("memtest.move"), 300); // no double charge
    MemCharge c("memtest.move.other");
    c.update(40);
    c = std::move(b); // move-assign releases the destination's bytes first
    EXPECT_EQ(ledger.current("memtest.move.other"), 0);
    EXPECT_EQ(ledger.current("memtest.move"), 300);
  }
  EXPECT_EQ(ledger.current("memtest.move"), 0);
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
}

TEST(Memory, SavingsFactorArithmetic) {
  // level0 fields 100 B, MR surcharge 50 B, particles 30 B at ratio 2 in 2D:
  // the uniform-fine equivalent refines fields and particles by 2^2 = 4x and
  // pays no surcharge.
  const MrSavings s = mr_savings_from_bytes(100, 50, 30, 2, 2);
  EXPECT_DOUBLE_EQ(s.actual_bytes, 180.0);
  EXPECT_DOUBLE_EQ(s.uniform_fine_bytes, 520.0);
  EXPECT_DOUBLE_EQ(s.factor, 520.0 / 180.0);
  // 3D scales by ratio^3.
  EXPECT_DOUBLE_EQ(mr_savings_from_bytes(100, 0, 0, 2, 3).uniform_fine_bytes,
                   800.0);
  // An empty run degrades to factor 1, not a division by zero.
  EXPECT_DOUBLE_EQ(mr_savings_from_bytes(0, 0, 0, 2, 2).factor, 1.0);
}

TEST(Memory, AnalyticSavingsMatchesHandComputation) {
  MrSavingsInputs in;
  in.dim = 2;
  in.ratio = 2;
  in.level0_grown_cells = 1000;
  in.fine_grown_cells = 400;
  in.coarse_grown_cells = 120;
  in.aux_grown_cells = 0; // 0 = fall back to fine_grown_cells
  in.fine_pml_cells = 50;
  in.coarse_pml_cells = 30;
  in.num_particles = 500; // reals_per_particle defaults to dim + 4 = 6
  const double b = 8;
  const double field0 = 9 * 1000 * b;
  const double mr = 9 * (400 + 120) * b + 6 * 400 * b + 12 * (50 + 30) * b;
  const double parts = 500 * 6 * b;
  const MrSavings s = analytic_mr_savings(in);
  EXPECT_DOUBLE_EQ(s.actual_bytes, field0 + mr + parts);
  EXPECT_DOUBLE_EQ(s.uniform_fine_bytes, (field0 + parts) * 4);
  // A distinct aux ghost width changes only the aux term.
  in.aux_grown_cells = 300;
  EXPECT_DOUBLE_EQ(analytic_mr_savings(in).actual_bytes,
                   field0 + mr - 6 * 400 * b + 6 * 300 * b + parts);
}

TEST(Memory, MeasuredSavingsReadsLedgerPrefixes) {
  auto& ledger = memory_ledger();
  const double f0 = static_cast<double>(ledger.current_prefix("fields.level0"));
  const double mr0 = static_cast<double>(ledger.current_prefix("mr"));
  const double p0 = static_cast<double>(ledger.current_prefix("particles"));
  MemCharge f("fields.level0.memtest");
  MemCharge m("mr.patch.memtest");
  MemCharge p("particles.memtest.level0");
  f.update(9000);
  m.update(2000);
  p.update(1000);
  const MrSavings got = measure_mr_savings(ledger, 2, 2);
  const MrSavings want =
      mr_savings_from_bytes(f0 + 9000, mr0 + 2000, p0 + 1000, 2, 2);
  EXPECT_DOUBLE_EQ(got.actual_bytes, want.actual_bytes);
  EXPECT_DOUBLE_EQ(got.uniform_fine_bytes, want.uniform_fine_bytes);
  EXPECT_DOUBLE_EQ(got.factor, want.factor);
}

TEST(Memory, PredictFirstOomFindsEarliestOffender) {
  RankRecorder rec(3);
  const std::vector<std::vector<std::int64_t>> lanes = {
      {100, 200, 150},  // step 0
      {100, 900, 150},  // step 1: rank 1 spikes over a 512-byte budget
      {950, 910, 150},  // step 2: rank 0 is the all-time peak
  };
  for (std::size_t s = 0; s < lanes.size(); ++s) {
    RankStepBreakdown bd;
    bd.step = static_cast<std::int64_t>(s);
    bd.ranks.resize(3);
    for (int r = 0; r < 3; ++r) { bd.ranks[static_cast<std::size_t>(r)].rank = r; }
    rec.add_step(std::move(bd), {});
    rec.set_last_step_resident_bytes(lanes[s]);
  }
  const OomPrediction p = predict_first_oom(rec, 512.0);
  EXPECT_TRUE(p.predicted);
  EXPECT_EQ(p.step, 1); // first crossing, not the peak
  EXPECT_EQ(p.rank, 1);
  EXPECT_EQ(p.peak_bytes, 950);
  EXPECT_EQ(p.peak_step, 2);
  EXPECT_EQ(p.peak_rank, 0);
  EXPECT_DOUBLE_EQ(p.headroom, 512.0 / 950.0);
  // A roomy budget fits with headroom > 1 and no prediction.
  const OomPrediction fits = predict_first_oom(rec, 1e6);
  EXPECT_FALSE(fits.predicted);
  EXPECT_GT(fits.headroom, 1.0);
  // No budget configured: no prediction, headroom unreported.
  const OomPrediction off = predict_first_oom(rec, 0.0);
  EXPECT_FALSE(off.predicted);
  EXPECT_DOUBLE_EQ(off.headroom, 0.0);
}

TEST(Memory, FormatBytesPicksHumanUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024 * 1024), "3.00 GiB");
}

} // namespace
} // namespace mrpic::obs
