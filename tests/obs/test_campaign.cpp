#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/insitu/registry.hpp"
#include "src/obs/campaign.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/run_manifest.hpp"

namespace mrpic::obs {
namespace {

// One synthetic run directory through the production writers, as the
// scenario driver lays it out: run.json + events JSONL + metrics JSONL.
void make_run(const std::string& dir, const std::string& scenario,
              const std::string& status, const std::vector<double>& step_wall_s,
              bool critical) {
  std::filesystem::create_directories(dir);
  const std::string pfx = dir + "/" + scenario;

  EventLogConfig ecfg;
  ecfg.path = pfx + "_events.jsonl";
  EventLog elog(ecfg);
  elog.publish("lifecycle", "run_start", EventSeverity::Info, -1, scenario);
  if (critical) {
    elog.publish("health", "alert", EventSeverity::Critical, 3, "blown up");
    elog.publish("lifecycle", "abort", EventSeverity::Critical, 3, "blown up");
  } else {
    elog.publish("lifecycle", "run_end", EventSeverity::Info,
                 std::int64_t(step_wall_s.size()), status);
  }

  MetricsRegistry reg;
  for (std::size_t i = 0; i < step_wall_s.size(); ++i) {
    reg.begin_step(std::int64_t(i));
    reg.gauge("step_wall_s").set(step_wall_s[i]);
    reg.gauge("health_energy_drift_rate").set(3e-9);
    reg.end_step();
  }
  reg.write_jsonl(pfx + "_metrics.jsonl");

  {
    insitu::Registry ireg;
    ireg.open_series(pfx + "_insitu.jsonl", false);
    ireg.add("beam", 1,
             [](insitu::Record& r) { r.set("emit_ny_m_rad", 2.5e-7); });
    ireg.collect(std::int64_t(step_wall_s.size()), 1e-15, /*force=*/true);
  }

  RunManifest m;
  m.run_id = std::filesystem::path(dir).filename().string();
  m.scenario = scenario;
  m.status = status;
  m.exit_code = status == kRunStatusCompleted ? 0 : 1;
  m.reason = critical ? "blown up" : "";
  m.start_unix = 1754600000;
  m.end_unix = 1754600010;
  m.steps_done = std::int64_t(step_wall_s.size());
  m.sim_time_s = 1e-15;
  m.num_events = elog.num_events();
  fill_build_info(m);
  m.artifacts.push_back({"events", scenario + "_events.jsonl", -1});
  m.artifacts.push_back({"metrics", scenario + "_metrics.jsonl", -1});
  m.artifacts.push_back({"insitu", scenario + "_insitu.jsonl", -1});
  ASSERT_TRUE(write_manifest_atomic(m, dir + "/run.json"));
}

TEST(Campaign, PercentileNearestRank) {
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
  EXPECT_DOUBLE_EQ(percentile({3.0}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 99), 4.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 1), 1.0);
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) { hundred.push_back(i); }
  EXPECT_DOUBLE_EQ(percentile(hundred, 50), 50.0);
  EXPECT_DOUBLE_EQ(percentile(hundred, 99), 99.0);
  EXPECT_DOUBLE_EQ(percentile(hundred, 100), 100.0);
}

TEST(Campaign, SummarizeJoinsRunArtifacts) {
  const std::string dir = "test_campaign_one/run_a";
  std::filesystem::remove_all("test_campaign_one");
  make_run(dir, "lwfa", kRunStatusCompleted, {0.001, 0.002, 0.003, 0.004}, false);

  const RunSummary rs = summarize_run_dir(dir);
  EXPECT_TRUE(rs.manifest_found);
  EXPECT_TRUE(rs.manifest_ok) << (rs.errors.empty() ? "" : rs.errors.front());
  EXPECT_EQ(rs.manifest.scenario, "lwfa");
  EXPECT_EQ(rs.metrics_records, 4);
  EXPECT_DOUBLE_EQ(rs.step_p50_s, 0.002);
  EXPECT_DOUBLE_EQ(rs.step_p99_s, 0.004);
  EXPECT_DOUBLE_EQ(rs.energy_drift_rate, 3e-9);
  EXPECT_DOUBLE_EQ(rs.emit_ny_m_rad, 2.5e-7);
  EXPECT_TRUE(std::isnan(rs.peak_energy_J));  // no spectrum diag in the run
  EXPECT_EQ(rs.num_events, 2);
  EXPECT_EQ(rs.num_critical, 0);
  EXPECT_TRUE(rs.events_monotone);
  std::filesystem::remove_all("test_campaign_one");
}

TEST(Campaign, MissingAndInvalidManifestsAreReportedNotFatal) {
  std::filesystem::remove_all("test_campaign_bad");
  std::filesystem::create_directories("test_campaign_bad/empty_run");
  const RunSummary missing = summarize_run_dir("test_campaign_bad/empty_run");
  EXPECT_FALSE(missing.manifest_found);
  EXPECT_FALSE(missing.manifest_ok);
  EXPECT_FALSE(missing.errors.empty());

  std::filesystem::create_directories("test_campaign_bad/corrupt_run");
  { std::ofstream("test_campaign_bad/corrupt_run/run.json") << "{{{not json"; }
  const RunSummary corrupt = summarize_run_dir("test_campaign_bad/corrupt_run");
  EXPECT_TRUE(corrupt.manifest_found);
  EXPECT_FALSE(corrupt.manifest_ok);

  std::filesystem::create_directories("test_campaign_bad/foreign_run");
  {
    std::ofstream("test_campaign_bad/foreign_run/run.json")
        << "{\"schema\": \"mrpic.metrics.v1\"}";
  }
  EXPECT_FALSE(summarize_run_dir("test_campaign_bad/foreign_run").manifest_ok);
  std::filesystem::remove_all("test_campaign_bad");
}

TEST(Campaign, OutOfOrderTimelineIsFlagged) {
  const std::string dir = "test_campaign_order/run_x";
  std::filesystem::remove_all("test_campaign_order");
  make_run(dir, "demo", kRunStatusCompleted, {0.001}, false);

  // Append an event whose seq runs backwards: the join must flag it.
  Event bad;
  bad.seq = 0;
  bad.step = 9;
  bad.wall_s = 99.0;
  bad.category = "resil";
  bad.kind = "crash";
  {
    std::ofstream os(dir + "/demo_events.jsonl", std::ios::app);
    os << EventLog::event_line(bad) << '\n';
  }
  const RunSummary rs = summarize_run_dir(dir);
  EXPECT_TRUE(rs.manifest_ok);
  EXPECT_FALSE(rs.events_monotone);
  std::filesystem::remove_all("test_campaign_order");
}

TEST(Campaign, ScanAggregatesAndRenders) {
  const std::string camp = "test_campaign_scan";
  std::filesystem::remove_all(camp);
  make_run(camp + "/run_lwfa_1", "lwfa", kRunStatusCompleted,
           {0.001, 0.002, 0.003, 0.004}, false);
  make_run(camp + "/run_lwfa_2", "lwfa", kRunStatusCompleted,
           {0.002, 0.004, 0.006, 0.008}, false);
  make_run(camp + "/run_target_1", "target", kRunStatusAborted, {0.01, 0.02},
           true);
  // A stray non-run directory must be ignored, not break the scan.
  std::filesystem::create_directories(camp + "/not_a_run");

  const CampaignReport rep = scan_campaign(camp);
  EXPECT_EQ(rep.runs_total(), 3);
  EXPECT_EQ(rep.runs_valid(), 3);
  EXPECT_EQ(rep.runs_with_status(kRunStatusCompleted), 2);
  EXPECT_EQ(rep.runs_with_status(kRunStatusAborted), 1);
  EXPECT_EQ(rep.runs_with_status(kRunStatusFailed), 0);

  ASSERT_EQ(rep.scenarios.size(), 2u);
  const ScenarioStats& lwfa = rep.scenarios[0];
  EXPECT_EQ(lwfa.scenario, "lwfa");
  EXPECT_EQ(lwfa.runs, 2);
  EXPECT_EQ(lwfa.completed, 2);
  EXPECT_EQ(lwfa.step_samples, 8);
  // Pooled samples: {1,2,2,3,4,4,6,8} ms -> nearest-rank p50 = 3 ms.
  EXPECT_DOUBLE_EQ(lwfa.step_p50_s, 0.003);
  EXPECT_DOUBLE_EQ(lwfa.step_p99_s, 0.008);
  EXPECT_EQ(rep.scenarios[1].scenario, "target");
  EXPECT_EQ(rep.scenarios[1].aborted, 1);

  // The aborted run carries its critical events into the triage.
  const RunSummary* aborted = nullptr;
  for (const auto& r : rep.runs) {
    if (r.manifest.status == kRunStatusAborted) { aborted = &r; }
  }
  ASSERT_NE(aborted, nullptr);
  EXPECT_EQ(aborted->num_critical, 2);
  EXPECT_FALSE(aborted->triage.empty());

  std::ostringstream md;
  write_campaign_markdown(rep, md);
  const std::string text = md.str();
  EXPECT_NE(text.find("## Campaign"), std::string::npos);
  EXPECT_NE(text.find("## Runs"), std::string::npos);
  EXPECT_NE(text.find("## Failed-run triage"), std::string::npos);
  EXPECT_NE(text.find("blown up"), std::string::npos);

  std::ostringstream js;
  write_campaign_json(rep, js);
  const auto doc = json::parse(js.str());
  EXPECT_EQ(doc["schema"].as_string(), kCampaignSchema);
  EXPECT_EQ(doc["runs"].as_array().size(), 3u);
  EXPECT_EQ(doc["scenarios"].as_array().size(), 2u);

  EXPECT_THROW(scan_campaign("no_such_campaign_dir"), std::runtime_error);
  std::filesystem::remove_all(camp);
}

} // namespace
} // namespace mrpic::obs
