#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/rank_recorder.hpp"
#include "src/obs/trace.hpp"

namespace mrpic::obs {
namespace {

// Two ranks, two steps, one inter-rank message per step.
RankRecorder make_recorder() {
  RankRecorder rec(2);
  for (std::int64_t s = 0; s < 2; ++s) {
    RankStepBreakdown bd;
    bd.step = s;
    bd.ranks.resize(2);
    for (int r = 0; r < 2; ++r) {
      bd.ranks[r].rank = r;
      bd.ranks[r].compute_s = r == 0 ? 3e-3 : 1e-3;
      bd.ranks[r].comm_s = 0.5e-3;
      bd.ranks[r].bytes_sent = r == 0 ? 1024 : 0;
      bd.ranks[r].bytes_recv = r == 0 ? 0 : 1024;
      bd.ranks[r].messages = 1;
      bd.ranks[r].boxes = 2;
    }
    HaloMessage msg;
    msg.src_rank = 0;
    msg.dst_rank = 1;
    msg.src_box = 0;
    msg.dst_box = 2;
    msg.bytes = 1024;
    msg.latency_s = 2e-6;
    msg.transfer_s = 1e-7;
    rec.set_step(s);
    rec.add_step(bd, {msg});
  }
  return rec;
}

TEST(RankRecorder, BreakdownStatsAndImbalance) {
  const auto rec = make_recorder();
  ASSERT_EQ(rec.steps().size(), 2u);
  const auto& bd = rec.steps()[0];
  EXPECT_DOUBLE_EQ(bd.max_compute_s(), 3e-3);
  EXPECT_DOUBLE_EQ(bd.mean_compute_s(), 2e-3);
  EXPECT_DOUBLE_EQ(bd.imbalance(), 1.5);
  EXPECT_DOUBLE_EQ(bd.max_total_s(), 3.5e-3);
  // Messages are re-tagged with the breakdown's step.
  ASSERT_EQ(rec.messages().size(), 2u);
  EXPECT_EQ(rec.messages()[0].step, 0);
  EXPECT_EQ(rec.messages()[1].step, 1);
  EXPECT_DOUBLE_EQ(rec.messages()[0].time_s(), 2e-6 + 1e-7);
}

TEST(RankRecorder, EmptyBreakdownHasUnitImbalance) {
  RankStepBreakdown bd;
  EXPECT_DOUBLE_EQ(bd.imbalance(), 1.0);
  bd.ranks.resize(3); // all-idle ranks: no compute, still well-defined
  EXPECT_DOUBLE_EQ(bd.imbalance(), 1.0);
}

TEST(RankRecorder, HeatmapCsvLayout) {
  const auto rec = make_recorder();
  std::ostringstream os;
  rec.write_rank_heatmap_csv(os);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "step,rank,boxes,compute_s,comm_s,total_s,bytes_sent,bytes_recv,"
            "messages,step_imbalance");
  std::vector<std::vector<std::string>> rows;
  while (std::getline(is, line)) {
    std::vector<std::string> fields;
    std::istringstream ls(line);
    std::string f;
    while (std::getline(ls, f, ',')) { fields.push_back(f); }
    ASSERT_EQ(fields.size(), 10u);
    rows.push_back(fields);
  }
  ASSERT_EQ(rows.size(), 4u); // 2 steps x 2 ranks
  // Row 0: step 0, rank 0; the step imbalance (max/mean = 1.5) is repeated
  // on each of the step's rows.
  EXPECT_EQ(rows[0][0], "0");
  EXPECT_EQ(rows[0][1], "0");
  EXPECT_EQ(rows[0][2], "2");
  EXPECT_DOUBLE_EQ(std::stod(rows[0][3]), 3e-3);   // compute_s
  EXPECT_DOUBLE_EQ(std::stod(rows[0][4]), 0.5e-3); // comm_s
  EXPECT_DOUBLE_EQ(std::stod(rows[0][5]), 3.5e-3); // total_s
  EXPECT_EQ(rows[0][6], "1024");
  EXPECT_EQ(rows[0][7], "0");
  EXPECT_EQ(rows[0][8], "1");
  EXPECT_DOUBLE_EQ(std::stod(rows[0][9]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][9]), 1.5); // repeated on rank 1's row
  EXPECT_EQ(rows[1][1], "1");
  EXPECT_EQ(rows[2][0], "1"); // second step
}

TEST(RankRecorder, MessageCapCountsDrops) {
  RankRecorder rec(2);
  rec.set_max_messages(3);
  RankStepBreakdown bd;
  bd.step = 0;
  bd.ranks.resize(2);
  std::vector<HaloMessage> msgs(5);
  rec.add_step(bd, msgs);
  EXPECT_EQ(rec.messages().size(), 3u);
  EXPECT_EQ(rec.dropped_messages(), 2u);
  rec.clear();
  EXPECT_EQ(rec.dropped_messages(), 0u);
  EXPECT_TRUE(rec.steps().empty());
}

TEST(RankRecorder, RebalanceRecordBackfillsStep) {
  RankRecorder rec(2);
  rec.set_step(42);
  RebalanceRecord rb;
  rb.rank_cost_before = {4.0, 1.0};
  rb.rank_cost_after = {2.5, 2.5};
  rb.imbalance_before = 1.6;
  rb.imbalance_after = 1.0;
  rec.add_rebalance(rb);
  ASSERT_EQ(rec.rebalances().size(), 1u);
  EXPECT_EQ(rec.rebalances()[0].step, 42);
  EXPECT_DOUBLE_EQ(rec.rebalances()[0].imbalance_before, 1.6);
}

TEST(RankRecorder, TraceRankLanesAndFlowEvents) {
  const auto rec = make_recorder();
  std::ostringstream os;
  write_chrome_trace({}, rec, os, "test_proc");
  const json::Value doc = json::parse(os.str());
  ASSERT_TRUE(doc["traceEvents"].is_array());
  const auto& events = doc["traceEvents"].as_array();

  int rank_lanes = 0, compute_slices = 0, halo_slices = 0;
  int flow_starts = 0, flow_finishes = 0;
  for (const auto& ev : events) {
    const auto ph = ev["ph"].as_string();
    const auto name = ev["name"].as_string();
    if (ph == "M" && name == "process_name" &&
        ev["args"]["name"].as_string().rfind("rank ", 0) == 0) {
      ++rank_lanes;
      EXPECT_GE(ev["pid"].as_int(), 1); // pid 0 stays the real process
    }
    if (ph == "X" && name == "compute") { ++compute_slices; }
    if (ph == "X" && name == "halo") { ++halo_slices; }
    if (ph == "s" && name == "halo_msg") { ++flow_starts; }
    if (ph == "f" && name == "halo_msg") {
      ++flow_finishes;
      EXPECT_EQ(ev["bp"].as_string(), "e");
    }
  }
  EXPECT_EQ(rank_lanes, 2);
  EXPECT_EQ(compute_slices, 4); // 2 steps x 2 ranks
  EXPECT_EQ(halo_slices, 4);
  EXPECT_EQ(flow_starts, 2);
  EXPECT_EQ(flow_finishes, 2);

  // Every flow pair shares cat+id and connects two distinct rank lanes.
  for (const auto& ev : events) {
    if (!ev["ph"].is_string() || ev["ph"].as_string() != "s") { continue; }
    if (ev["name"].as_string() != "halo_msg") { continue; }
    const std::int64_t id = ev["id"].as_int();
    bool found_finish = false;
    for (const auto& fin : events) {
      if (fin["ph"].is_string() && fin["ph"].as_string() == "f" &&
          fin["id"].is_number() && fin["id"].as_int() == id) {
        found_finish = true;
        EXPECT_EQ(fin["cat"].as_string(), ev["cat"].as_string());
        EXPECT_NE(fin["pid"].as_int(), ev["pid"].as_int());
      }
    }
    EXPECT_TRUE(found_finish);
  }
}

} // namespace
} // namespace mrpic::obs
