#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "src/obs/json.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/rank_recorder.hpp"
#include "src/obs/trace.hpp"

namespace mrpic::obs {
namespace {

// Structural validity of the combined (profiler + rank-lane) Chrome trace:
// the properties a chrome://tracing / Perfetto loader relies on, checked on
// the parsed document rather than on substrings. Complements the content
// checks in test_trace.cpp / test_rank_recorder.cpp.

RankRecorder make_recorder(int nranks, int steps) {
  RankRecorder rec(nranks);
  for (std::int64_t s = 0; s < steps; ++s) {
    RankStepBreakdown bd;
    bd.step = s;
    bd.ranks.resize(nranks);
    std::vector<HaloMessage> msgs;
    for (int r = 0; r < nranks; ++r) {
      bd.ranks[r].rank = r;
      bd.ranks[r].compute_s = 1e-3 * (r + 1);
      bd.ranks[r].comm_s = 2e-4;
      bd.ranks[r].messages = 2;
      bd.ranks[r].boxes = 1;
    }
    for (int r = 0; r < nranks; ++r) {
      HaloMessage m;
      m.src_rank = r;
      m.dst_rank = (r + 1) % nranks;
      m.bytes = 4096;
      m.latency_s = 2e-6;
      m.transfer_s = 3e-6;
      msgs.push_back(m);
    }
    rec.set_step(s);
    rec.add_step(bd, msgs);
  }
  return rec;
}

json::Value make_trace(int nranks, int steps) {
  Profiler p;
  p.set_tracing(true);
  for (std::int64_t s = 0; s < 2; ++s) {
    p.set_step(s);
    auto scope = p.scope("step");
  }
  const auto rec = make_recorder(nranks, steps);
  std::ostringstream os;
  write_chrome_trace(p.trace_events(), rec, os, "validity_proc");
  return json::parse(os.str());
}

TEST(TraceValidity, EveryFlowFinishHasMatchingStartSameIdAndCat) {
  const auto doc = make_trace(3, 2);
  ASSERT_TRUE(doc["traceEvents"].is_array());
  const auto& events = doc["traceEvents"].as_array();

  // Collect flow starts/finishes keyed by id.
  std::map<std::int64_t, const json::Value*> starts;
  std::map<std::int64_t, const json::Value*> finishes;
  for (const auto& ev : events) {
    if (!ev["ph"].is_string()) { continue; }
    const auto& ph = ev["ph"].as_string();
    if (ph != "s" && ph != "f") { continue; }
    ASSERT_TRUE(ev["id"].is_number()) << "flow event without id";
    ASSERT_TRUE(ev["cat"].is_string()) << "flow event without cat";
    const std::int64_t id = ev["id"].as_int();
    auto& slot = ph == "s" ? starts : finishes;
    EXPECT_EQ(slot.count(id), 0u) << "duplicate flow id " << id;
    slot[id] = &ev;
  }
  EXPECT_FALSE(starts.empty());
  EXPECT_EQ(starts.size(), finishes.size());
  for (const auto& [id, fin] : finishes) {
    const auto it = starts.find(id);
    ASSERT_NE(it, starts.end()) << "finish without start, id " << id;
    const auto& start = *it->second;
    EXPECT_EQ((*fin)["cat"].as_string(), start["cat"].as_string());
    // The arrow connects two distinct rank lanes. (Endpoints anchor at each
    // lane's own halo-slice midpoint in the modeled timebase, so the finish
    // may legitimately carry an earlier timestamp than the start.)
    EXPECT_NE((*fin)["pid"].as_int(), start["pid"].as_int());
    EXPECT_GE(start["ts"].as_number(), 0.0);
    EXPECT_GE((*fin)["ts"].as_number(), 0.0);
    // Binding point "e" attaches the finish to the enclosing slice.
    EXPECT_EQ((*fin)["bp"].as_string(), "e");
  }
}

TEST(TraceValidity, RankLanePidsAndMetadataAreConsistent) {
  const int nranks = 4;
  const auto doc = make_trace(nranks, 2);
  const auto& events = doc["traceEvents"].as_array();

  // pid 0 stays the real process; each rank r gets pid r + 1 with a
  // process_name metadata event naming it.
  std::map<std::int64_t, std::string> lane_names;
  std::set<std::int64_t> slice_pids;
  for (const auto& ev : events) {
    if (!ev["ph"].is_string()) { continue; }
    const auto& ph = ev["ph"].as_string();
    if (ph == "M" && ev["name"].as_string() == "process_name") {
      lane_names[ev["pid"].as_int()] = ev["args"]["name"].as_string();
    } else if (ph == "X") {
      slice_pids.insert(ev["pid"].is_number() ? ev["pid"].as_int() : 0);
    }
  }
  ASSERT_EQ(lane_names.count(0), 1u);
  EXPECT_EQ(lane_names[0], "validity_proc");
  for (int r = 0; r < nranks; ++r) {
    ASSERT_EQ(lane_names.count(r + 1), 1u) << "no metadata for rank lane " << r;
    EXPECT_EQ(lane_names[r + 1], "rank " + std::to_string(r));
  }
  // Every slice lands on a named lane, and every rank lane carries slices.
  for (std::int64_t pid : slice_pids) {
    EXPECT_EQ(lane_names.count(pid), 1u) << "slice on unnamed pid " << pid;
  }
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(slice_pids.count(r + 1), 1u) << "rank lane " << r << " has no slices";
  }
}

TEST(TraceValidity, SlicesAreNonNegativeAndLanesMonotone) {
  const auto doc = make_trace(3, 3);
  const auto& events = doc["traceEvents"].as_array();
  // Per (pid, tid) lane, complete events must not overlap when laid out
  // back-to-back per step (the rank-lane timebase): sort order in the file
  // is emission order, so check via last-end bookkeeping.
  std::map<std::pair<std::int64_t, std::int64_t>, double> last_end;
  for (const auto& ev : events) {
    if (!ev["ph"].is_string() || ev["ph"].as_string() != "X") { continue; }
    ASSERT_TRUE(ev["ts"].is_number());
    ASSERT_TRUE(ev["dur"].is_number());
    EXPECT_GE(ev["dur"].as_number(), 0.0);
    const std::int64_t pid = ev["pid"].is_number() ? ev["pid"].as_int() : 0;
    if (pid == 0) { continue; } // profiler lane may nest; rank lanes may not
    const auto key = std::make_pair(pid, ev["tid"].is_number() ? ev["tid"].as_int() : 0);
    const auto it = last_end.find(key);
    if (it != last_end.end()) {
      EXPECT_GE(ev["ts"].as_number(), it->second - 1e-6)
          << "overlapping slices on rank lane pid " << pid;
    }
    last_end[key] = ev["ts"].as_number() + ev["dur"].as_number();
  }
  EXPECT_FALSE(last_end.empty());
}

} // namespace
} // namespace mrpic::obs
