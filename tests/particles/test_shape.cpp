#include <gtest/gtest.h>

#include <cmath>

#include "src/particles/shape.hpp"

namespace mrpic::particles {
namespace {

template <int ORDER>
void check_partition_of_unity() {
  for (Real x : {0.0, 0.1, 0.25, 0.5, 0.75, 0.999, 3.3, -2.7}) {
    Real w[ORDER + 1];
    Shape<ORDER>::compute(w, x);
    Real s = 0;
    for (int i = 0; i <= ORDER; ++i) {
      EXPECT_GE(w[i], -1e-14) << "order " << ORDER << " x " << x;
      s += w[i];
    }
    EXPECT_NEAR(s, 1.0, 1e-12) << "order " << ORDER << " x " << x;
  }
}

TEST(Shape, PartitionOfUnity) {
  check_partition_of_unity<1>();
  check_partition_of_unity<2>();
  check_partition_of_unity<3>();
}

template <int ORDER>
void check_first_moment() {
  // B-splines reproduce the position: sum_i w_i * (start+i) == x - shift,
  // where the spline center conventions make the first moment equal x for
  // odd orders centered between nodes and nearest-node for order 2.
  for (Real x : {0.2, 0.5, 0.77, 4.31}) {
    Real w[ORDER + 1];
    const int start = Shape<ORDER>::compute(w, x);
    Real m1 = 0;
    for (int i = 0; i <= ORDER; ++i) { m1 += w[i] * (start + i); }
    // For B-splines of any order the first moment equals x - 1/2 for the
    // cell-offset conventions of order 1/3 and x for order 2... verify the
    // actual invariant: the moment is x shifted by a constant independent
    // of x. Compute the shift at x=10.0 and require consistency.
    Real wref[ORDER + 1];
    const int sref = Shape<ORDER>::compute(wref, x + 1);
    Real m1ref = 0;
    for (int i = 0; i <= ORDER; ++i) { m1ref += wref[i] * (sref + i); }
    EXPECT_NEAR(m1ref - m1, 1.0, 1e-12) << "order " << ORDER;
  }
}

TEST(Shape, FirstMomentTracksPosition) {
  check_first_moment<1>();
  check_first_moment<2>();
  check_first_moment<3>();
}

TEST(Shape, Order1Exact) {
  Real w[2];
  const int i = Shape<1>::compute(w, 3.25);
  EXPECT_EQ(i, 3);
  EXPECT_DOUBLE_EQ(w[0], 0.75);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
}

TEST(Shape, Order2CenteredOnNearestNode) {
  Real w[3];
  // x = 5.0: exactly on node 5 -> symmetric weights (1/8, 3/4, 1/8).
  const int i = Shape<2>::compute(w, 5.0);
  EXPECT_EQ(i, 4);
  EXPECT_DOUBLE_EQ(w[0], 0.125);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
  EXPECT_DOUBLE_EQ(w[2], 0.125);
}

TEST(Shape, Order3SymmetricAtMidCell) {
  Real w[4];
  const int i = Shape<3>::compute(w, 2.5);
  EXPECT_EQ(i, 1);
  EXPECT_NEAR(w[0], w[3], 1e-15);
  EXPECT_NEAR(w[1], w[2], 1e-15);
  EXPECT_NEAR(w[0], 1.0 / 48.0, 1e-12);
  EXPECT_NEAR(w[1], 23.0 / 48.0, 1e-12);
}

TEST(Shape, ContinuityAcrossCellBoundary) {
  // Shapes are C^{ORDER-1}: weights evaluated immediately left/right of a
  // cell boundary agree on the shared support.
  Real wl[4], wr[4];
  const Real eps = 1e-9;
  const int il = Shape<3>::compute(wl, 4.0 - eps);
  const int ir = Shape<3>::compute(wr, 4.0 + eps);
  EXPECT_EQ(ir, il + 1);
  for (int t = 0; t < 3; ++t) { EXPECT_NEAR(wl[t + 1], wr[t], 1e-6); }
  EXPECT_NEAR(wl[0], 0.0, 1e-6); // leftmost weight vanishes at the boundary
}

class ShapeOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShapeOrderSweep, SecondMomentConstant) {
  // The variance of a B-spline of order n is (n+1)/12 (in cell^2 units),
  // independent of the particle position: a strong shape-correctness check.
  const int order = GetParam();
  auto moment2 = [&](Real x) {
    Real w[4];
    int start = 0;
    Real m1 = 0, m2 = 0;
    if (order == 1) {
      start = Shape<1>::compute(w, x);
    } else if (order == 2) {
      start = Shape<2>::compute(w, x);
    } else {
      start = Shape<3>::compute(w, x);
    }
    for (int i = 0; i <= order; ++i) {
      m1 += w[i] * (start + i);
      m2 += w[i] * (start + i) * (start + i);
    }
    return m2 - m1 * m1;
  };
  const Real expected = (order + 1) / 12.0;
  for (Real x : {0.1, 0.33, 0.5, 0.9, 7.77}) {
    EXPECT_NEAR(moment2(x), expected, 1e-10) << "order " << order << " x " << x;
  }
}

// Only orders >= 2 have position-independent discrete variance; the linear
// (order 1) weights have variance d(1-d), tested separately below.
INSTANTIATE_TEST_SUITE_P(Orders, ShapeOrderSweep, ::testing::Values(2, 3));

TEST(Shape, Order1VarianceIsDOneMinusD) {
  for (Real x : {0.1, 0.33, 0.5, 0.9}) {
    Real w[2];
    const int start = Shape<1>::compute(w, x);
    const Real d = x - start;
    Real m1 = 0, m2 = 0;
    for (int i = 0; i <= 1; ++i) {
      m1 += w[i] * (start + i);
      m2 += w[i] * (start + i) * (start + i);
    }
    EXPECT_NEAR(m2 - m1 * m1, d * (1 - d), 1e-12) << "x " << x;
  }
}

} // namespace
} // namespace mrpic::particles
