#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/particles/split_merge.hpp"

namespace mrpic::particles {
namespace {

using namespace mrpic::constants;

mrpic::Geometry<2> make_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(15, 15)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(16e-6, 16e-6),
                            {false, false});
}

template <int DIM>
std::array<Real, 3> total_momentum(const ParticleTile<DIM>& t) {
  std::array<Real, 3> p{};
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (int cc = 0; cc < 3; ++cc) { p[cc] += t.w[i] * t.u[cc][i]; }
  }
  return p;
}

template <int DIM>
Real total_weight(const ParticleTile<DIM>& t) {
  Real w = 0;
  for (Real v : t.w) { w += v; }
  return w;
}

TEST(Split, ConservesChargeMomentumAndCenter) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  tile.push_back({5.5e-6, 7.3e-6}, {1e7, 2e7, -3e6}, 10.0);
  tile.push_back({2.0e-6, 2.0e-6}, {0, 0, 0}, 1.0); // below threshold

  const Real w0 = total_weight(tile);
  const auto p0 = total_momentum(tile);
  Real xw0 = 0;
  for (std::size_t i = 0; i < tile.size(); ++i) { xw0 += tile.w[i] * tile.x[0][i]; }

  SplitConfig cfg;
  cfg.w_max = 5.0;
  const auto stats = split_heavy<2>(tile, geom, m_e, cfg);
  EXPECT_EQ(stats.splits, 1);
  EXPECT_EQ(tile.size(), 3u);
  EXPECT_NEAR(total_weight(tile), w0, w0 * 1e-12);
  const auto p1 = total_momentum(tile);
  for (int cc = 0; cc < 3; ++cc) { EXPECT_NEAR(p1[cc], p0[cc], std::abs(p0[cc]) * 1e-12 + 1e-9); }
  Real xw1 = 0;
  for (std::size_t i = 0; i < tile.size(); ++i) { xw1 += tile.w[i] * tile.x[0][i]; }
  EXPECT_NEAR(xw1, xw0, std::abs(xw0) * 1e-12);
  EXPECT_EQ(stats.energy_change, 0.0); // momenta unchanged
}

TEST(Split, DisplacesAlongMotion) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  tile.push_back({8e-6, 8e-6}, {1e7, 0, 0}, 10.0);
  SplitConfig cfg;
  cfg.w_max = 1.0;
  cfg.offset_cells = 0.25;
  split_heavy<2>(tile, geom, m_e, cfg);
  ASSERT_EQ(tile.size(), 2u);
  // Moving along +x: halves displaced in x only.
  EXPECT_NEAR(std::abs(tile.x[0][0] - tile.x[0][1]), 2 * 0.25 * geom.cell_size(0), 1e-12);
  EXPECT_NEAR(tile.x[1][0], tile.x[1][1], 1e-15);
}

TEST(Split, RestParticleSplitsAlongX) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  tile.push_back({8e-6, 8e-6}, {0, 0, 0}, 4.0);
  SplitConfig cfg;
  cfg.w_max = 1.0;
  split_heavy<2>(tile, geom, m_e, cfg);
  ASSERT_EQ(tile.size(), 2u);
  EXPECT_GT(std::abs(tile.x[0][0] - tile.x[0][1]), 0.0);
}

TEST(Split, NoOpWhenDisabled) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  tile.push_back({8e-6, 8e-6}, {0, 0, 0}, 100.0);
  const auto stats = split_heavy<2>(tile, geom, m_e, SplitConfig{});
  EXPECT_EQ(stats.splits, 0);
  EXPECT_EQ(tile.size(), 1u);
}

TEST(Merge, ConservesChargeAndMomentumExactly) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> jit(-0.4e-6, 0.4e-6);
  std::normal_distribution<double> mom(1e7, 1e5); // similar momenta
  // 40 particles crowded into one cell.
  for (int i = 0; i < 40; ++i) {
    tile.push_back({8.5e-6 + jit(rng), 8.5e-6 + jit(rng)},
                   {mom(rng), mom(rng) * 0.1, 0}, 1.0 + 0.05 * i);
  }
  const Real w0 = total_weight(tile);
  const auto p0 = total_momentum(tile);
  const Real e0 = [&] {
    Real e = 0;
    for (std::size_t i = 0; i < tile.size(); ++i) {
      const Real u2 =
          tile.u[0][i] * tile.u[0][i] + tile.u[1][i] * tile.u[1][i] + tile.u[2][i] * tile.u[2][i];
      e += tile.w[i] * (std::sqrt(1 + u2 / (c * c)) - 1) * m_e * c * c;
    }
    return e;
  }();

  MergeConfig cfg;
  cfg.max_per_cell = 20;
  cfg.momentum_tolerance = 0.2;
  const auto stats = merge_crowded<2>(tile, geom, geom.domain(), m_e, cfg);
  EXPECT_GT(stats.merges, 0);
  EXPECT_LE(tile.size(), 40u - stats.merges);
  EXPECT_NEAR(total_weight(tile), w0, w0 * 1e-12);
  const auto p1 = total_momentum(tile);
  for (int cc = 0; cc < 3; ++cc) {
    EXPECT_NEAR(p1[cc], p0[cc], std::abs(p0[0]) * 1e-12);
  }
  // Energy decreases, by no more than the pair spread allows.
  EXPECT_LE(stats.energy_change, 0.0);
  EXPECT_GT(stats.energy_change, -0.01 * e0);
}

TEST(Merge, RespectsMomentumTolerance) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  // Two counter-streaming populations in one cell: merging them would
  // destroy the distribution; the tolerance must prevent it.
  for (int i = 0; i < 20; ++i) {
    tile.push_back({8.5e-6, 8.5e-6}, {1e7, 0, 0}, 1.0);
    tile.push_back({8.5e-6, 8.5e-6}, {-1e7, 0, 0}, 1.0);
  }
  MergeConfig cfg;
  cfg.max_per_cell = 10;
  cfg.momentum_tolerance = 0.05;
  const auto stats = merge_crowded<2>(tile, geom, geom.domain(), m_e, cfg);
  // Sorting by |u| interleaves the two streams (equal magnitude), so pairs
  // straddle them and the gate rejects every pair.
  EXPECT_EQ(stats.merges, 0);
  EXPECT_EQ(tile.size(), 40u);
}

TEST(Merge, LeavesQuietCellsAlone) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  for (int i = 0; i < 10; ++i) {
    tile.push_back({(1.5 + i) * 1e-6, 8e-6}, {1e6, 0, 0}, 1.0); // one per cell
  }
  MergeConfig cfg;
  cfg.max_per_cell = 4;
  const auto stats = merge_crowded<2>(tile, geom, geom.domain(), m_e, cfg);
  EXPECT_EQ(stats.merges, 0);
  EXPECT_EQ(tile.size(), 10u);
}

TEST(SplitMerge, RoundTripKeepsTotals) {
  // Split everything, then merge back down: charge/momentum invariant
  // throughout — the coupling the paper's future-work MR+splitting needs.
  const auto geom = make_geom();
  ParticleTile<2> tile;
  std::mt19937_64 rng(11);
  std::normal_distribution<double> mom(5e6, 1e4);
  for (int i = 0; i < 30; ++i) {
    tile.push_back({8.2e-6, 8.7e-6}, {mom(rng), 0, 0}, 4.0);
  }
  const Real w0 = total_weight(tile);
  const auto p0 = total_momentum(tile);

  SplitConfig scfg;
  scfg.w_max = 2.0;
  split_heavy<2>(tile, geom, m_e, scfg);
  EXPECT_EQ(tile.size(), 60u);

  MergeConfig mcfg;
  mcfg.max_per_cell = 30;
  mcfg.momentum_tolerance = 0.5;
  merge_crowded<2>(tile, geom, geom.domain(), m_e, mcfg);
  EXPECT_LE(tile.size(), 60u);

  EXPECT_NEAR(total_weight(tile), w0, w0 * 1e-12);
  const auto p1 = total_momentum(tile);
  EXPECT_NEAR(p1[0], p0[0], std::abs(p0[0]) * 1e-12);
}

TEST(Merge, Works3D) {
  const mrpic::Geometry<3> geom(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(7, 7, 7)),
      mrpic::RealVect3(0, 0, 0), mrpic::RealVect3(8e-6, 8e-6, 8e-6), {});
  ParticleTile<3> tile;
  for (int i = 0; i < 30; ++i) {
    tile.push_back({4.5e-6, 4.5e-6, 4.5e-6}, {1e7, 1e7, 1e7}, 1.0);
  }
  MergeConfig cfg;
  cfg.max_per_cell = 10;
  const auto stats = merge_crowded<3>(tile, geom, geom.domain(), m_e, cfg);
  EXPECT_GT(stats.merges, 0);
  EXPECT_NEAR(total_weight(tile), 30.0, 1e-10);
}

} // namespace
} // namespace mrpic::particles
