// Decomposition invariance of the particle pipeline: depositing the same
// particles on a 1-box level and a 2x2-box level must produce identical
// currents after the ghost reduction, and gathering the same fields must be
// identical regardless of which fab serves the particle. This is the
// property that makes domain decomposition (and dynamic load balancing)
// physically invisible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "src/amr/multifab.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"

namespace mrpic::particles {
namespace {

using mrpic::constants::c;
using mrpic::constants::q_e;

mrpic::Geometry<2> make_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(3.2e-6, 3.2e-6),
                            {true, true});
}

struct Cloud {
  std::vector<std::array<Real, 2>> x_new, x_old;
  std::vector<std::array<Real, 3>> u;
  std::vector<Real> w;
};

Cloud random_cloud(int n, std::uint64_t seed) {
  Cloud cl;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(0.0, 3.2e-6);
  std::uniform_real_distribution<double> mov(-0.4, 0.4);
  const Real dx = 0.1e-6;
  for (int i = 0; i < n; ++i) {
    std::array<Real, 2> xo = {pos(rng), pos(rng)};
    std::array<Real, 2> xn = {xo[0] + mov(rng) * dx, xo[1] + mov(rng) * dx};
    cl.x_old.push_back(xo);
    cl.x_new.push_back(xn);
    cl.u.push_back({mov(rng) * c, mov(rng) * c, mov(rng) * c});
    cl.w.push_back(1.0 + (i % 5));
  }
  return cl;
}

// Deposit the cloud on a given decomposition; every particle goes to the
// tile that owns its *old* cell (the pre-push home, as in the PIC loop).
mrpic::MultiFab<2> deposit_on(const mrpic::BoxArray<2>& ba, const Cloud& cl, int order) {
  const auto geom = make_geom();
  mrpic::MultiFab<2> J(ba, 3, mrpic::default_num_ghost);
  const Real dt = 0.5 * 0.1e-6 / c;
  for (int b = 0; b < ba.size(); ++b) {
    ParticleTile<2> tile;
    std::array<std::vector<Real>, 2> x_old;
    for (std::size_t p = 0; p < cl.w.size(); ++p) {
      mrpic::IntVect2 cell(geom.cell_index(cl.x_old[p][0], 0),
                           geom.cell_index(cl.x_old[p][1], 1));
      if (!ba[b].contains(cell)) { continue; }
      tile.push_back(cl.x_new[p], cl.u[p], cl.w[p]);
      x_old[0].push_back(cl.x_old[p][0]);
      x_old[1].push_back(cl.x_old[p][1]);
    }
    deposit_current<2>(DepositionKind::Esirkepov, order, tile, x_old, geom, J.array(b),
                       -q_e, dt);
  }
  J.sum_boundary(geom);
  J.fill_boundary(geom);
  return J;
}

class MultiBoxDeposition : public ::testing::TestWithParam<int> {};

TEST_P(MultiBoxDeposition, DecompositionInvariant) {
  const int order = GetParam();
  const auto geom = make_geom();
  const auto cl = random_cloud(200, 42);
  const auto J1 = deposit_on(mrpic::BoxArray<2>(geom.domain()), cl, order);
  const auto J4 = deposit_on(mrpic::BoxArray<2>::decompose(geom.domain(), 16), cl, order);

  const Real scale = std::max({J1.max_abs(0), J1.max_abs(1), J1.max_abs(2)});
  ASSERT_GT(scale, 0.0);
  for (int m = 0; m < J4.num_fabs(); ++m) {
    const auto a4 = J4.const_array(m);
    const auto a1 = J1.const_array(0);
    const auto& vb = J4.valid_box(m);
    Real worst = 0;
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        for (int cc = 0; cc < 3; ++cc) {
          worst = std::max(worst, std::abs(a4(i, j, 0, cc) - a1(i, j, 0, cc)));
        }
      }
    }
    EXPECT_LT(worst, 1e-12 * scale) << "fab " << m << " order " << order;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MultiBoxDeposition, ::testing::Values(1, 2, 3));

TEST(MultiBoxGather, SameFieldEitherSide) {
  // A particle just left/right of a box boundary gathers from different
  // fabs; with synced ghosts the results must agree to round-off.
  const auto geom = make_geom();
  const auto ba = mrpic::BoxArray<2>::decompose(geom.domain(), 16);
  mrpic::MultiFab<2> E(ba, 3, mrpic::default_num_ghost);
  mrpic::MultiFab<2> B(ba, 3, mrpic::default_num_ghost);
  // Smooth field.
  for (int m = 0; m < E.num_fabs(); ++m) {
    auto& fab = E.fab(m);
    fab.for_each_cell(E.valid_box(m), [&](const mrpic::IntVect2& p) {
      for (int cc = 0; cc < 3; ++cc) {
        fab(p, cc) = std::sin(0.3 * p[0]) * std::cos(0.2 * p[1]) + cc;
      }
    });
  }
  E.fill_boundary(geom);
  B.fill_boundary(geom);

  // Boundary between box 0 and its x-neighbor is at x = 16 cells = 1.6e-6.
  // Gather the SAME physical point from both fabs: it is valid in the right
  // box and within the left box's ghost reach, so the synced ghosts must
  // make the two interpolations agree to round-off.
  GatheredFields left, right;
  ParticleTile<2> tile;
  tile.push_back({1.6e-6 + 0.02e-6, 1.0e-6}, {0, 0, 0}, 1.0);
  int bl = -1, br = -1;
  ba.contains(mrpic::IntVect2(15, 10), &bl);
  ba.contains(mrpic::IntVect2(16, 10), &br);
  ASSERT_NE(bl, br);
  gather_fields<2>(3, tile, geom, E.const_array(bl), B.const_array(bl), left);
  gather_fields<2>(3, tile, geom, E.const_array(br), B.const_array(br), right);
  for (int cc = 0; cc < 3; ++cc) {
    EXPECT_NEAR(left.E[cc][0], right.E[cc][0], 1e-13) << cc;
  }
}

} // namespace
} // namespace mrpic::particles
