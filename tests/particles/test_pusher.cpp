#include <gtest/gtest.h>

#include <cmath>

#include "src/particles/pusher.hpp"

namespace mrpic::particles {
namespace {

using namespace mrpic::constants;

TEST(Boris, PureElectricAcceleration) {
  // du/dt = qE/m exactly for B = 0 (u is proper velocity).
  std::array<Real, 3> u = {0, 0, 0};
  const std::array<Real, 3> E = {1e6, 0, 0};
  const std::array<Real, 3> B = {0, 0, 0};
  const Real dt = 1e-15;
  boris_rotate(u, E, B, -q_e, m_e, dt);
  EXPECT_NEAR(u[0], -q_e / m_e * E[0] * dt, std::abs(u[0]) * 1e-12);
  EXPECT_EQ(u[1], 0.0);
  EXPECT_EQ(u[2], 0.0);
}

TEST(Boris, MagneticFieldPreservesEnergy) {
  // Pure magnetic rotation must not change |u| (to round-off), for any dt.
  std::array<Real, 3> u = {1e7, 2e7, -5e6};
  const Real u0 = std::sqrt(u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
  const std::array<Real, 3> E = {0, 0, 0};
  const std::array<Real, 3> B = {0.3, -0.1, 1.0};
  for (int s = 0; s < 1000; ++s) { boris_rotate(u, E, B, -q_e, m_e, 1e-13); }
  const Real u1 = std::sqrt(u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
  EXPECT_NEAR(u1 / u0, 1.0, 1e-12);
}

TEST(Boris, GyroFrequency) {
  // Non-relativistic electron in Bz: angular frequency omega_c = |q|B/m.
  const Real B0 = 0.01; // weak field, v << c
  std::array<Real, 3> u = {1e5, 0, 0};
  const std::array<Real, 3> E = {0, 0, 0};
  const std::array<Real, 3> B = {0, 0, B0};
  const Real omega_c = q_e * B0 / m_e;
  const Real period = 2 * pi / omega_c;
  const int nsteps = 2000;
  const Real dt = period / nsteps;
  for (int s = 0; s < nsteps; ++s) { boris_rotate(u, E, B, -q_e, m_e, dt); }
  // After one period the velocity must return to its initial direction.
  EXPECT_NEAR(u[0], 1e5, 1e5 * 1e-3);
  EXPECT_NEAR(u[1], 0.0, 1e5 * 5e-3);
}

TEST(Boris, RelativisticGamma) {
  // Constant E accelerates: u grows linearly in time, v saturates at c.
  std::array<Real, 3> u = {0, 0, 0};
  const std::array<Real, 3> E = {0, 0, 1e14}; // extreme field
  const std::array<Real, 3> B = {0, 0, 0};
  const Real dt = 1e-16;
  for (int s = 0; s < 1000; ++s) { boris_rotate(u, E, B, -q_e, m_e, dt); }
  const Real expected_u = q_e / m_e * 1e14 * 1000 * dt; // |q|E t / m
  EXPECT_NEAR(std::abs(u[2]), expected_u, expected_u * 1e-9);
  const Real gamma = std::sqrt(1 + u[2] * u[2] / (c * c));
  EXPECT_GT(gamma, 5.0); // strongly relativistic
  EXPECT_LT(std::abs(u[2]) / gamma, c); // v < c always
}

TEST(Boris, ExBDriftVelocity) {
  // Crossed fields: drift velocity v = E x B / B^2 (independent of charge).
  // E along x, B along z -> v_drift = -E0/B0 along y.
  const Real E0 = 1e4, B0 = 0.1; // |v_drift| = 1e5 m/s << c
  std::array<Real, 3> u = {0, -E0 / B0, 0}; // start at the drift velocity
  const std::array<Real, 3> E = {E0, 0, 0};
  const std::array<Real, 3> B = {0, 0, B0};
  // At exactly the drift velocity the Lorentz force vanishes: u stays put.
  for (int s = 0; s < 200; ++s) { boris_rotate(u, E, B, -q_e, m_e, 1e-12); }
  EXPECT_NEAR(u[1], -E0 / B0, E0 / B0 * 0.02);
  EXPECT_NEAR(u[0], 0.0, E0 / B0 * 0.02);
}

TEST(PushParticles, PositionUpdateUsesRelativisticVelocity) {
  ParticleTile<2> tile;
  const Real uz = 10 * c; // gamma ~ 10
  tile.push_back({0.0, 0.0}, {uz, 0, 0}, 1.0);
  GatheredFields f;
  f.resize(1);
  const Real dt = 1e-15;
  push_particles<2>(PusherKind::Boris, tile, f, -q_e, m_e, dt);
  const Real gamma = std::sqrt(1 + uz * uz / (c * c));
  EXPECT_NEAR(tile.x[0][0], uz / gamma * dt, 1e-25);
  EXPECT_LT(tile.x[0][0], c * dt); // never superluminal
}

TEST(PushParticles, VayMatchesBorisWeakField) {
  // In weak fields both pushers converge to the same trajectory.
  ParticleTile<2> t_boris, t_vay;
  t_boris.push_back({0.0, 0.0}, {1e6, 2e6, 0}, 1.0);
  t_vay.push_back({0.0, 0.0}, {1e6, 2e6, 0}, 1.0);
  GatheredFields f;
  f.resize(1);
  f.E[0][0] = 1e3;
  f.B[2][0] = 1e-4;
  for (int s = 0; s < 100; ++s) {
    push_particles<2>(PusherKind::Boris, t_boris, f, -q_e, m_e, 1e-14);
    push_particles<2>(PusherKind::Vay, t_vay, f, -q_e, m_e, 1e-14);
  }
  for (int cc = 0; cc < 3; ++cc) {
    EXPECT_NEAR(t_vay.u[cc][0], t_boris.u[cc][0],
                std::max(std::abs(t_boris.u[cc][0]) * 1e-5, 1.0));
  }
}

TEST(PushParticles, ManyParticlesIndependent) {
  ParticleTile<3> tile;
  for (int i = 0; i < 10; ++i) {
    tile.push_back({1e-6 * i, 0.0, 0.0}, {0, 0, 0}, 1.0);
  }
  GatheredFields f;
  f.resize(10);
  for (int i = 0; i < 10; ++i) { f.E[0][i] = 1e6 * i; }
  push_particles<3>(PusherKind::Boris, tile, f, -q_e, m_e, 1e-15);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(tile.u[0][i], -q_e / m_e * 1e6 * i * 1e-15,
                std::abs(tile.u[0][i]) * 1e-12 + 1e-20);
  }
}

} // namespace
} // namespace mrpic::particles
