#include <gtest/gtest.h>

#include <cmath>

#include "src/particles/particle_container.hpp"

namespace mrpic::particles {
namespace {

using mrpic::constants::c;
using mrpic::constants::m_e;
using mrpic::constants::q_e;

mrpic::Geometry<2> make_geom(bool periodic_x = false) {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(3.2e-6, 3.2e-6),
                            {periodic_x, false});
}

TEST(ParticleContainer, AddRoutesToOwningTile) {
  const auto geom = make_geom();
  const auto ba = mrpic::BoxArray<2>::decompose(geom.domain(), 16); // 2x2 tiles
  ParticleContainer<2> pc(Species::electron(), ba);
  EXPECT_TRUE(pc.add_particle(geom, {0.5e-6, 0.5e-6}, {0, 0, 0}, 1.0));
  EXPECT_TRUE(pc.add_particle(geom, {2.5e-6, 0.5e-6}, {0, 0, 0}, 1.0));
  EXPECT_TRUE(pc.add_particle(geom, {2.5e-6, 2.5e-6}, {0, 0, 0}, 1.0));
  EXPECT_FALSE(pc.add_particle(geom, {5.0e-6, 0.5e-6}, {0, 0, 0}, 1.0)); // outside
  EXPECT_EQ(pc.total_particles(), 3);
  // Each particle sits in the tile whose box contains its cell.
  auto tile_of = [&](Real x, Real y) {
    mrpic::IntVect2 cell(geom.cell_index(x, 0), geom.cell_index(y, 1));
    int which = -1;
    EXPECT_TRUE(ba.contains(cell, &which));
    return which;
  };
  EXPECT_EQ(pc.tile(tile_of(0.5e-6, 0.5e-6)).size(), 1u);
  EXPECT_EQ(pc.tile(tile_of(2.5e-6, 0.5e-6)).size(), 1u);
  EXPECT_EQ(pc.tile(tile_of(2.5e-6, 2.5e-6)).size(), 1u);
}

TEST(ParticleContainer, TotalCharge) {
  const auto geom = make_geom();
  ParticleContainer<2> pc(Species::electron(), mrpic::BoxArray<2>(geom.domain()));
  pc.add_particle(geom, {1e-6, 1e-6}, {0, 0, 0}, 2.0);
  pc.add_particle(geom, {2e-6, 1e-6}, {0, 0, 0}, 3.0);
  EXPECT_NEAR(pc.total_charge(), -5.0 * q_e, 1e-30);
}

TEST(ParticleContainer, KineticEnergy) {
  const auto geom = make_geom();
  ParticleContainer<2> pc(Species::electron(), mrpic::BoxArray<2>(geom.domain()));
  const Real u = 3 * c; // gamma = sqrt(10)
  pc.add_particle(geom, {1e-6, 1e-6}, {u, 0, 0}, 2.0);
  const Real gamma = std::sqrt(1 + 9.0);
  EXPECT_NEAR(pc.kinetic_energy(), 2.0 * (gamma - 1) * m_e * c * c, 1e-22);
}

TEST(ParticleContainer, RedistributeMovesAcrossTiles) {
  const auto geom = make_geom();
  const auto ba = mrpic::BoxArray<2>::decompose(geom.domain(), 16);
  ParticleContainer<2> pc(Species::electron(), ba);
  pc.add_particle(geom, {1.5e-6, 0.5e-6}, {0, 0, 0}, 1.0);
  int src = -1, dst = -1;
  ba.contains(mrpic::IntVect2(geom.cell_index(1.5e-6, 0), geom.cell_index(0.5e-6, 1)), &src);
  ba.contains(mrpic::IntVect2(geom.cell_index(2.5e-6, 0), geom.cell_index(0.5e-6, 1)), &dst);
  ASSERT_NE(src, dst);
  // Move it into the neighboring tile's region by hand (as the pusher would).
  pc.tile(src).x[0][0] = 2.5e-6;
  EXPECT_EQ(pc.redistribute(geom), 0);
  EXPECT_EQ(pc.tile(src).size(), 0u);
  EXPECT_EQ(pc.tile(dst).size(), 1u);
}

TEST(ParticleContainer, RedistributeRemovesLeavers) {
  const auto geom = make_geom();
  ParticleContainer<2> pc(Species::electron(), mrpic::BoxArray<2>(geom.domain()));
  pc.add_particle(geom, {1e-6, 1e-6}, {0, 0, 0}, 1.0);
  pc.tile(0).x[1][0] = -1e-6; // out of the non-periodic y boundary
  EXPECT_EQ(pc.redistribute(geom), 1);
  EXPECT_EQ(pc.total_particles(), 0);
}

TEST(ParticleContainer, RedistributeWrapsPeriodic) {
  const auto geom = make_geom(/*periodic_x=*/true);
  ParticleContainer<2> pc(Species::electron(), mrpic::BoxArray<2>(geom.domain()));
  pc.add_particle(geom, {1e-6, 1e-6}, {0, 0, 0}, 1.0);
  pc.tile(0).x[0][0] = 3.3e-6; // past the periodic x boundary (L = 3.2e-6)
  EXPECT_EQ(pc.redistribute(geom), 0);
  EXPECT_EQ(pc.total_particles(), 1);
  EXPECT_NEAR(pc.tile(0).x[0][0], 0.1e-6, 1e-13);
}

TEST(ParticleContainer, RemoveBelow) {
  const auto geom = make_geom();
  ParticleContainer<2> pc(Species::electron(), mrpic::BoxArray<2>(geom.domain()));
  for (int i = 0; i < 10; ++i) {
    pc.add_particle(geom, {(0.25 + 0.3 * i) * 1e-6, 1e-6}, {0, 0, 0}, 1.0);
  }
  const auto removed = pc.remove_below(0, 1.0e-6);
  EXPECT_EQ(removed, 3); // 0.25, 0.55, 0.85 um
  EXPECT_EQ(pc.total_particles(), 7);
}

TEST(ParticleContainer, RegridPreservesParticles) {
  const auto geom = make_geom();
  const auto ba1 = mrpic::BoxArray<2>::decompose(geom.domain(), 32);
  ParticleContainer<2> pc(Species::electron(), ba1);
  for (int i = 0; i < 20; ++i) {
    pc.add_particle(geom, {(0.1 + 0.15 * i) * 1e-6, (0.1 + 0.1 * i) * 1e-6}, {0, 0, 0},
                    1.0 + i);
  }
  const Real q_before = pc.total_charge();
  const auto ba2 = mrpic::BoxArray<2>::decompose(geom.domain(), 8);
  pc.regrid(geom, ba2);
  EXPECT_EQ(pc.num_tiles(), ba2.size());
  EXPECT_EQ(pc.total_particles(), 20);
  EXPECT_NEAR(pc.total_charge(), q_before, std::abs(q_before) * 1e-12);
  // Every particle in its correct tile.
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    const auto& t = pc.tile(ti);
    for (std::size_t p = 0; p < t.size(); ++p) {
      mrpic::IntVect2 cell(geom.cell_index(t.x[0][p], 0), geom.cell_index(t.x[1][p], 1));
      EXPECT_TRUE(ba2[ti].contains(cell));
    }
  }
}

TEST(ParticleTile, TransferAndErase) {
  ParticleTile<2> a, b;
  a.push_back({1.0, 2.0}, {3, 4, 5}, 6.0);
  a.push_back({7.0, 8.0}, {9, 10, 11}, 12.0);
  a.transfer_to(0, b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b.x[0][0], 1.0);
  EXPECT_DOUBLE_EQ(b.u[2][0], 5.0);
  EXPECT_DOUBLE_EQ(b.w[0], 6.0);
  // swap-with-last: the remaining particle is the former #1.
  EXPECT_DOUBLE_EQ(a.x[0][0], 7.0);
}

} // namespace
} // namespace mrpic::particles
