#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/diag/diagnostics.hpp"
#include "src/particles/deposition.hpp"

namespace mrpic::particles {
namespace {

using mrpic::constants::c;

template <int DIM>
mrpic::Geometry<DIM> make_geom(int n) {
  if constexpr (DIM == 2) {
    return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1)),
                              mrpic::RealVect2(0, 0), mrpic::RealVect2(n * 1e-7, n * 1e-7),
                              {true, true});
  } else {
    return mrpic::Geometry<3>(
        mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(n - 1, n - 1, n - 1)),
        mrpic::RealVect3(0, 0, 0), mrpic::RealVect3(n * 1e-7, n * 1e-7, n * 1e-7),
        {true, true, true});
  }
}

// The central charge-conservation property (Esirkepov): the deposited J
// satisfies (rho_new - rho_old)/dt + div J = 0 on the Yee lattice, to
// round-off, for arbitrary sub-cell motion.
template <int DIM>
void check_continuity(int order, std::uint64_t seed) {
  const int n = 16;
  const auto geom = make_geom<DIM>(n);
  const mrpic::BoxArray<DIM> ba(geom.domain());
  mrpic::MultiFab<DIM> J(ba, 3, mrpic::default_num_ghost);
  mrpic::MultiFab<DIM> rho_old(ba, 1, mrpic::default_num_ghost);
  mrpic::MultiFab<DIM> rho_new(ba, 1, mrpic::default_num_ghost);

  const Real dx = geom.cell_size(0);
  const Real dt = 0.5 * dx / c;
  const Real q = -mrpic::constants::q_e;

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(2.0, n - 3.0);
  std::uniform_real_distribution<double> mov(-0.9, 0.9);

  ParticleTile<DIM> tile;
  std::array<std::vector<Real>, DIM> x_old;
  for (int p = 0; p < 40; ++p) {
    std::array<Real, DIM> xo, xn;
    std::array<Real, 3> u{};
    for (int d = 0; d < DIM; ++d) {
      xo[d] = pos(rng) * dx;
      xn[d] = xo[d] + mov(rng) * c * dt; // |displacement| < 1 cell
    }
    // Momentum consistent with the displacement (matters only for Jz in 2D).
    Real disp2 = 0;
    for (int d = 0; d < DIM; ++d) { disp2 += (xn[d] - xo[d]) * (xn[d] - xo[d]); }
    const Real v = std::sqrt(disp2) / dt;
    const Real gamma = 1 / std::sqrt(1 - v * v / (c * c));
    for (int d = 0; d < DIM; ++d) { u[d] = gamma * (xn[d] - xo[d]) / dt; }
    tile.push_back(xn, u, 1.0 + 0.1 * p);
    for (int d = 0; d < DIM; ++d) { x_old[d].push_back(xo[d]); }
  }

  // rho_old at x_old: temporarily swap positions.
  ParticleTile<DIM> tile_old = tile;
  for (int d = 0; d < DIM; ++d) { tile_old.x[d] = x_old[d]; }
  deposit_charge<DIM>(order, tile_old, geom, rho_old.array(0), q);
  deposit_charge<DIM>(order, tile, geom, rho_new.array(0), q);
  deposit_current<DIM>(DepositionKind::Esirkepov, order, tile, x_old, geom, J.array(0), q,
                       dt);

  const Real resid = mrpic::diag::continuity_residual<DIM>(rho_old, rho_new, J, geom, dt);
  // Scale: typical |drho/dt|.
  const Real scale = rho_new.max_abs(0) / dt;
  EXPECT_LT(resid, 1e-10 * scale) << "order " << order << " DIM " << DIM;
}

class Continuity2D : public ::testing::TestWithParam<int> {};
TEST_P(Continuity2D, EsirkepovConservesCharge) { check_continuity<2>(GetParam(), 11); }
INSTANTIATE_TEST_SUITE_P(Orders, Continuity2D, ::testing::Values(1, 2, 3));

class Continuity3D : public ::testing::TestWithParam<int> {};
TEST_P(Continuity3D, EsirkepovConservesCharge) { check_continuity<3>(GetParam(), 13); }
INSTANTIATE_TEST_SUITE_P(Orders, Continuity3D, ::testing::Values(1, 2, 3));

TEST(Deposition, TotalCurrentMatchesChargeFlux) {
  // Integral of Esirkepov J over the grid equals q w <v> (each component):
  // sum_i Jx * dV = Q * (x_new - x_old) / dt.
  const int n = 16;
  const auto geom = make_geom<2>(n);
  mrpic::MultiFab<2> J(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  const Real dx = geom.cell_size(0);
  const Real dt = 0.5 * dx / c;
  const Real q = -mrpic::constants::q_e;
  const Real w = 3.0;

  ParticleTile<2> tile;
  std::array<std::vector<Real>, 2> x_old;
  const std::array<Real, 2> xo = {7.3 * dx, 8.6 * dx};
  const std::array<Real, 2> xn = {7.9 * dx, 8.2 * dx};
  tile.push_back(xn, {0, 0, 0}, w);
  x_old[0].push_back(xo[0]);
  x_old[1].push_back(xo[1]);
  deposit_current<2>(DepositionKind::Esirkepov, 3, tile, x_old, geom, J.array(0), q, dt);

  const Real dv = dx * dx; // unit z-depth
  EXPECT_NEAR(J.sum(0) * dv, q * w * (xn[0] - xo[0]) / dt,
              std::abs(q * w * dx / dt) * 1e-10);
  EXPECT_NEAR(J.sum(1) * dv, q * w * (xn[1] - xo[1]) / dt,
              std::abs(q * w * dx / dt) * 1e-10);
}

TEST(Deposition, OutOfPlaneCurrent2D) {
  // Jz in 2D deposits q w vz S: integral = q w vz.
  const int n = 16;
  const auto geom = make_geom<2>(n);
  mrpic::MultiFab<2> J(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  const Real dx = geom.cell_size(0);
  const Real dt = 0.4 * dx / c;
  const Real q = -mrpic::constants::q_e;
  const Real uz = 0.3 * c;
  const Real gamma = 1 / std::sqrt(1 - 0.09);

  ParticleTile<2> tile;
  std::array<std::vector<Real>, 2> x_old;
  tile.push_back({8.5 * dx, 8.5 * dx}, {0, 0, gamma * uz}, 2.0);
  x_old[0].push_back(8.5 * dx);
  x_old[1].push_back(8.5 * dx);
  deposit_current<2>(DepositionKind::Esirkepov, 3, tile, x_old, geom, J.array(0), q, dt);
  EXPECT_NEAR(J.sum(2) * dx * dx, q * 2.0 * uz, std::abs(q * 2.0 * uz) * 1e-10);
}

TEST(Deposition, DirectMatchesEsirkepovIntegral) {
  // The two schemes distribute differently but the total deposited current
  // must agree (same physical charge flux).
  const int n = 16;
  const auto geom = make_geom<2>(n);
  mrpic::MultiFab<2> Je(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  mrpic::MultiFab<2> Jd(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  const Real dx = geom.cell_size(0);
  const Real dt = 0.5 * dx / c;
  const Real q = -mrpic::constants::q_e;

  ParticleTile<2> tile;
  std::array<std::vector<Real>, 2> x_old;
  const Real vx = 0.4 * c;
  const Real gamma = 1 / std::sqrt(1 - 0.16);
  const std::array<Real, 2> xo = {6.2 * dx, 9.1 * dx};
  const std::array<Real, 2> xn = {xo[0] + vx * dt, xo[1]};
  tile.push_back(xn, {gamma * vx, 0, 0}, 1.0);
  x_old[0].push_back(xo[0]);
  x_old[1].push_back(xo[1]);

  deposit_current<2>(DepositionKind::Esirkepov, 3, tile, x_old, geom, Je.array(0), q, dt);
  deposit_current<2>(DepositionKind::Direct, 3, tile, x_old, geom, Jd.array(0), q, dt);
  EXPECT_NEAR(Je.sum(0), Jd.sum(0), std::abs(Je.sum(0)) * 1e-9);
}

TEST(Deposition, ChargeDepositTotal) {
  const int n = 12;
  const auto geom = make_geom<3>(n);
  mrpic::MultiFab<3> rho(mrpic::BoxArray<3>(geom.domain()), 1, mrpic::default_num_ghost);
  const Real dx = geom.cell_size(0);
  const Real q = mrpic::constants::q_e;

  ParticleTile<3> tile;
  tile.push_back({5.3 * dx, 6.1 * dx, 4.9 * dx}, {0, 0, 0}, 7.0);
  tile.push_back({2.8 * dx, 3.3 * dx, 8.2 * dx}, {0, 0, 0}, 1.5);
  deposit_charge<3>(3, tile, geom, rho.array(0), q);
  // Integral of rho dV = total charge.
  EXPECT_NEAR(rho.sum(0) * dx * dx * dx, q * 8.5, q * 8.5 * 1e-10);
}

TEST(Deposition, StationaryParticleNoInPlaneCurrent) {
  const int n = 12;
  const auto geom = make_geom<2>(n);
  mrpic::MultiFab<2> J(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  const Real dx = geom.cell_size(0);
  ParticleTile<2> tile;
  std::array<std::vector<Real>, 2> x_old;
  tile.push_back({5.5 * dx, 5.5 * dx}, {0, 0, 0}, 1.0);
  x_old[0].push_back(5.5 * dx);
  x_old[1].push_back(5.5 * dx);
  deposit_current<2>(DepositionKind::Esirkepov, 3, tile, x_old, geom, J.array(0),
                     -mrpic::constants::q_e, 1e-16);
  EXPECT_EQ(J.max_abs(0), 0.0);
  EXPECT_EQ(J.max_abs(1), 0.0);
  EXPECT_EQ(J.max_abs(2), 0.0);
}

} // namespace
} // namespace mrpic::particles
