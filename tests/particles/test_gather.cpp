#include <gtest/gtest.h>

#include <cmath>

#include "src/amr/multifab.hpp"
#include "src/fields/yee.hpp"
#include "src/particles/gather.hpp"

namespace mrpic::particles {
namespace {

mrpic::Geometry<2> make_geom2(int n) {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(n * 1e-7, n * 1e-7),
                            {false, false});
}

TEST(Gather, UniformFieldIsExact) {
  const int n = 16;
  const auto geom = make_geom2(n);
  mrpic::MultiFab<2> E(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  mrpic::MultiFab<2> B(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  E.set_val(3.0);
  B.set_val(-2.0);

  ParticleTile<2> tile;
  const Real dx = geom.cell_size(0);
  tile.push_back({5.37 * dx, 9.11 * dx}, {0, 0, 0}, 1.0);
  tile.push_back({8.0 * dx, 3.5 * dx}, {0, 0, 0}, 1.0);

  GatheredFields out;
  for (int order : {1, 2, 3}) {
    gather_fields<2>(order, tile, geom, E.const_array(0), B.const_array(0), out);
    for (std::size_t p = 0; p < tile.size(); ++p) {
      for (int cc = 0; cc < 3; ++cc) {
        EXPECT_NEAR(out.E[cc][p], 3.0, 1e-12) << "order " << order;
        EXPECT_NEAR(out.B[cc][p], -2.0, 1e-12) << "order " << order;
      }
    }
  }
}

TEST(Gather, LinearFieldReproducedExactly) {
  // B-spline interpolation of any order reproduces linear functions, with
  // the correct staggering offsets per component.
  const int n = 32;
  const auto geom = make_geom2(n);
  mrpic::MultiFab<2> E(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  mrpic::MultiFab<2> B(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
  const Real dx = geom.cell_size(0), dy = geom.cell_size(1);

  // Fill E/B components (including ghosts) with f(x,y) = x + 2y evaluated at
  // each component's staggered location.
  auto fill = [&](mrpic::MultiFab<2>& mf, auto stag_of) {
    auto& fab = mf.fab(0);
    fab.for_each_cell(mf.grown_box(0), [&](const mrpic::IntVect2& p) {
      for (int cc = 0; cc < 3; ++cc) {
        const auto s = stag_of(cc);
        const Real x = (p[0] + 0.5 * s[0]) * dx;
        const Real y = (p[1] + 0.5 * s[1]) * dy;
        fab(p, cc) = x + 2 * y;
      }
    });
  };
  fill(E, [](int cc) { return mrpic::fields::e_stag<2>(cc); });
  fill(B, [](int cc) { return mrpic::fields::b_stag<2>(cc); });

  ParticleTile<2> tile;
  tile.push_back({13.27 * dx, 17.63 * dy}, {0, 0, 0}, 1.0);
  GatheredFields out;
  for (int order : {1, 2, 3}) {
    gather_fields<2>(order, tile, geom, E.const_array(0), B.const_array(0), out);
    const Real expected = 13.27 * dx + 2 * 17.63 * dy;
    for (int cc = 0; cc < 3; ++cc) {
      EXPECT_NEAR(out.E[cc][0], expected, expected * 1e-12) << "order " << order;
      EXPECT_NEAR(out.B[cc][0], expected, expected * 1e-12) << "order " << order;
    }
  }
}

TEST(Gather, SmoothFieldConvergesSecondOrderInResolution) {
  // B-spline gathering of any order is a smoothing interpolation with an
  // O(h^2) error on smooth fields (higher shape orders reduce grid noise,
  // not the smooth-field error — their error constant is the spline
  // variance, which grows with order). Check the h^2 convergence.
  Real errs[2];
  int idx = 0;
  for (int n : {32, 64}) {
    const auto geom = make_geom2(n);
    mrpic::MultiFab<2> E(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
    mrpic::MultiFab<2> B(mrpic::BoxArray<2>(geom.domain()), 3, mrpic::default_num_ghost);
    const Real L = geom.prob_hi()[0];
    auto& fab = E.fab(0);
    fab.for_each_cell(E.grown_box(0), [&](const mrpic::IntVect2& p) {
      const Real x = (p[0] + 0.5) * geom.cell_size(0); // Ex staggering
      fab(p, 0) = std::sin(2 * mrpic::constants::pi * x / L);
    });
    ParticleTile<2> tile;
    // Same physical position in both resolutions.
    const Real xp = 0.413 * L;
    tile.push_back({xp, 0.5 * L}, {0, 0, 0}, 1.0);
    const Real exact = std::sin(2 * mrpic::constants::pi * xp / L);
    GatheredFields out;
    gather_fields<2>(3, tile, geom, E.const_array(0), B.const_array(0), out);
    errs[idx++] = std::abs(out.E[0][0] - exact);
  }
  // Doubling resolution cuts the error by ~4 (allow slack for the sampled
  // position landing at different sub-cell offsets).
  EXPECT_LT(errs[1], errs[0] / 2.5);
  EXPECT_LT(errs[1], 2e-3);
}

TEST(Gather, FlopsEstimatesPositive) {
  EXPECT_GT(gather_flops_per_particle(1, 2), 0);
  EXPECT_GT(gather_flops_per_particle(3, 3), gather_flops_per_particle(1, 3));
}

} // namespace
} // namespace mrpic::particles
