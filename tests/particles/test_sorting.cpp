#include <gtest/gtest.h>

#include <random>

#include "src/particles/sorting.hpp"

namespace mrpic::particles {
namespace {

mrpic::Geometry<2> make_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(15, 15)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(16.0, 16.0),
                            {false, false});
}

TEST(Sorting, SortsByCellAndKeepsAttributesTogether) {
  const auto geom = make_geom();
  const auto valid = geom.domain();
  ParticleTile<2> tile;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> pos(0.0, 16.0);
  for (int i = 0; i < 500; ++i) {
    const Real x = pos(rng), y = pos(rng);
    // Attributes encode the position so we can verify the permutation kept
    // rows intact: u0 = x, u1 = y, w = x + y.
    tile.push_back({x, y}, {x, y, 0}, x + y);
  }
  ASSERT_FALSE(is_sorted_by_cell(tile, geom, valid));
  sort_tile_by_cell(tile, geom, valid);
  EXPECT_TRUE(is_sorted_by_cell(tile, geom, valid));
  for (std::size_t p = 0; p < tile.size(); ++p) {
    EXPECT_DOUBLE_EQ(tile.u[0][p], tile.x[0][p]);
    EXPECT_DOUBLE_EQ(tile.u[1][p], tile.x[1][p]);
    EXPECT_DOUBLE_EQ(tile.w[p], tile.x[0][p] + tile.x[1][p]);
  }
}

TEST(Sorting, StableTotals) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> pos(0.0, 16.0);
  Real wsum = 0;
  for (int i = 0; i < 200; ++i) {
    const Real w = 1.0 + (i % 7);
    tile.push_back({pos(rng), pos(rng)}, {0, 0, 0}, w);
    wsum += w;
  }
  sort_tile_by_cell(tile, geom, geom.domain());
  Real after = 0;
  for (Real w : tile.w) { after += w; }
  EXPECT_DOUBLE_EQ(after, wsum);
  EXPECT_EQ(tile.size(), 200u);
}

TEST(Sorting, EmptyAndSingleAreNoops) {
  const auto geom = make_geom();
  ParticleTile<2> tile;
  sort_tile_by_cell(tile, geom, geom.domain());
  EXPECT_EQ(tile.size(), 0u);
  tile.push_back({1.5, 2.5}, {0, 0, 0}, 1.0);
  sort_tile_by_cell(tile, geom, geom.domain());
  EXPECT_EQ(tile.size(), 1u);
  EXPECT_TRUE(is_sorted_by_cell(tile, geom, geom.domain()));
}

TEST(Sorting, GhostParticlesClampToNearestCell) {
  // A particle slightly outside the valid box (pre-redistribute state) must
  // not crash the counting sort.
  const auto geom = make_geom();
  ParticleTile<2> tile;
  tile.push_back({-0.5, 8.0}, {0, 0, 0}, 1.0); // just outside low x
  tile.push_back({16.4, 8.0}, {0, 0, 0}, 1.0); // just outside high x
  tile.push_back({8.0, 8.0}, {0, 0, 0}, 1.0);
  sort_tile_by_cell(tile, geom, geom.domain());
  EXPECT_EQ(tile.size(), 3u);
  EXPECT_TRUE(is_sorted_by_cell(tile, geom, geom.domain()));
}

} // namespace
} // namespace mrpic::particles
