// Invariant-ledger data layer: by-name lookup, JSONL serialization (round-
// trips through the obs JSON parser), and the NaN/Inf field scan over valid
// regions in 2D and 3D.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "src/health/ledger.hpp"
#include "src/obs/json.hpp"

namespace mrpic::health {
namespace {

TEST(Ledger, ValueLooksUpEveryQuantity) {
  LedgerSample s;
  s.field_energy_J = 2.0;
  s.kinetic_energy_J = 3.0;
  s.total_charge_C = -1.5;
  s.num_particles = 42;
  s.escaped = 7;
  s.swept = 9;
  s.max_gamma = 5.0;
  s.cfl_margin = 0.02;
  s.gauss_residual = 1e-9;
  s.continuity_residual = 1e-13;
  EXPECT_DOUBLE_EQ(s.value("field_energy_J"), 2.0);
  EXPECT_DOUBLE_EQ(s.value("kinetic_energy_J"), 3.0);
  EXPECT_DOUBLE_EQ(s.value("total_energy_J"), 5.0);
  EXPECT_DOUBLE_EQ(s.value("total_charge_C"), -1.5);
  EXPECT_DOUBLE_EQ(s.value("num_particles"), 42.0);
  EXPECT_DOUBLE_EQ(s.value("escaped"), 7.0);
  EXPECT_DOUBLE_EQ(s.value("swept"), 9.0);
  EXPECT_DOUBLE_EQ(s.value("max_gamma"), 5.0);
  EXPECT_DOUBLE_EQ(s.value("cfl_margin"), 0.02);
  EXPECT_DOUBLE_EQ(s.value("gauss_residual"), 1e-9);
  EXPECT_DOUBLE_EQ(s.value("continuity_residual"), 1e-13);
  // Unprobed / unknown names are NaN (rules skip them).
  EXPECT_TRUE(std::isnan(s.value("energy_drift_rate")));
  EXPECT_TRUE(std::isnan(s.value("nan_cells"))); // -1 sentinel -> NaN
  EXPECT_TRUE(std::isnan(s.value("no_such_quantity")));
  s.nan_cells = 3;
  EXPECT_DOUBLE_EQ(s.value("nan_cells"), 3.0);
}

TEST(Ledger, EveryDeclaredQuantityResolves) {
  LedgerSample s;
  s.nan_cells = 0;
  s.energy_drift_rate = 0;
  s.step_wall_s = 0;
  s.gauss_residual = 0;
  s.continuity_residual = 0;
  s.gauss_residual_fine = 0;
  s.continuity_residual_fine = 0;
  s.mem_total_bytes = 0;
  for (const auto& q : ledger_quantities()) {
    EXPECT_FALSE(std::isnan(s.value(q))) << q;
  }
}

TEST(Ledger, WriteSampleRoundTripsThroughJsonParser) {
  LedgerSample s;
  s.step = 17;
  s.time = 1.25e-15;
  s.field_energy_J = 4.5;
  s.kinetic_energy_J = 0.5;
  s.nan_cells = 2;
  s.nan_field = "fine_E";
  SpeciesSample sp;
  sp.name = "electrons";
  sp.level0 = 100;
  sp.patch = 20;
  sp.kinetic_J = 0.5;
  sp.charge_C = -1e-12;
  sp.max_gamma = 3.0;
  s.species.push_back(sp);

  std::ostringstream os;
  write_sample(s, os);
  const auto doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc["step"].as_int(), 17);
  EXPECT_DOUBLE_EQ(doc["time"].as_number(), 1.25e-15);
  EXPECT_DOUBLE_EQ(doc["total_energy_J"].as_number(), 5.0);
  EXPECT_EQ(doc["nan_cells"].as_int(), 2);
  EXPECT_EQ(doc["nan_field"].as_string(), "fine_E");
  // Unprobed residuals serialize as null, not NaN (JSON has no NaN).
  EXPECT_TRUE(doc["gauss_residual"].is_null());
  ASSERT_TRUE(doc["species"].is_array());
  ASSERT_EQ(doc["species"].as_array().size(), 1u);
  const auto& jsp = doc["species"].as_array()[0];
  EXPECT_EQ(jsp["name"].as_string(), "electrons");
  EXPECT_EQ(jsp["level0"].as_int(), 100);
  EXPECT_EQ(jsp["patch"].as_int(), 20);
  EXPECT_DOUBLE_EQ(jsp["max_gamma"].as_number(), 3.0);
}

TEST(Ledger, CountNonfinite2DFindsNanAndInfInValidCells) {
  const mrpic::BoxArray<2> ba(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(7, 7)));
  mrpic::MultiFab<2> mf(ba, 3, 2);
  EXPECT_EQ(count_nonfinite<2>(mf), 0);
  mf.fab(0)(mrpic::IntVect2(3, 4), 1) = std::numeric_limits<Real>::quiet_NaN();
  mf.fab(0)(mrpic::IntVect2(0, 0), 2) = std::numeric_limits<Real>::infinity();
  EXPECT_EQ(count_nonfinite<2>(mf), 2);
}

TEST(Ledger, CountNonfiniteIgnoresGhostCells) {
  const mrpic::BoxArray<2> ba(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(7, 7)));
  mrpic::MultiFab<2> mf(ba, 1, 2);
  // A NaN in the ghost frame is mid-step business as usual.
  mf.fab(0)(mrpic::IntVect2(-1, 3), 0) = std::numeric_limits<Real>::quiet_NaN();
  mf.fab(0)(mrpic::IntVect2(9, 9), 0) = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_EQ(count_nonfinite<2>(mf), 0);
}

TEST(Ledger, CountNonfinite3D) {
  const mrpic::BoxArray<3> ba(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(3, 3, 3)));
  mrpic::MultiFab<3> mf(ba, 3, 1);
  EXPECT_EQ(count_nonfinite<3>(mf), 0);
  mf.fab(0)(mrpic::IntVect3(1, 2, 3), 0) = std::numeric_limits<Real>::quiet_NaN();
  mf.fab(0)(mrpic::IntVect3(0, 0, 0), 2) = -std::numeric_limits<Real>::infinity();
  mf.fab(0)(mrpic::IntVect3(-1, 0, 0), 0) = std::numeric_limits<Real>::quiet_NaN(); // ghost
  EXPECT_EQ(count_nonfinite<3>(mf), 2);
}

TEST(Ledger, CountNonfiniteEmptyMultiFab) {
  mrpic::MultiFab<2> mf;
  EXPECT_EQ(count_nonfinite<2>(mf), 0);
}

} // namespace
} // namespace mrpic::health
