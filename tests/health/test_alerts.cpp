// Monitor-level alert plumbing: durable alerts JSONL (each alert on disk
// the moment it is raised), flush-sink ordering, the checkpoint-request
// latch, abort latching, and the end-to-end Simulation abort path (bound
// rule -> AbortError out of run(), last alert already on disk).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/health/monitor.hpp"
#include "src/obs/json.hpp"

namespace mrpic::health {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) { lines.push_back(line); }
  }
  return lines;
}

LedgerSample hot_sample(std::int64_t step, double gamma) {
  LedgerSample s;
  s.step = step;
  s.field_energy_J = 1.0;
  s.max_gamma = gamma;
  return s;
}

MonitorConfig gamma_bound_config(double hi, ActionSpec action = {}) {
  MonitorConfig cfg;
  cfg.log_to_stderr = false;
  cfg.watchdog.bounds.push_back({"max_gamma", 0.0, hi, Severity::Critical, action});
  return cfg;
}

TEST(Monitor, AlertIsOnDiskBeforeAnyFlushOrShutdown) {
  const std::string path = "test_alerts_durable.jsonl";
  std::remove(path.c_str());
  auto cfg = gamma_bound_config(10.0);
  cfg.alerts_path = path;
  HealthMonitor mon(cfg);

  ASSERT_EQ(mon.record(hot_sample(1, 50.0)).size(), 1u);
  // No flush, no destructor: the append itself must already be durable.
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  auto doc = obs::json::parse(lines[0]);
  EXPECT_EQ(doc["step"].as_int(), 1);
  EXPECT_EQ(doc["quantity"].as_string(), "max_gamma");

  // Condition clears then re-fires: second alert appends a second line.
  mon.record(hot_sample(2, 1.0));
  mon.record(hot_sample(3, 99.0));
  lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(obs::json::parse(lines[1])["step"].as_int(), 3);
  std::remove(path.c_str());
}

TEST(Monitor, AlertsFileTruncatedPerRunNotPerAlert) {
  const std::string path = "test_alerts_trunc.jsonl";
  {
    std::ofstream out(path);
    out << "{\"stale\":\"from a previous run\"}\n";
  }
  auto cfg = gamma_bound_config(10.0);
  cfg.alerts_path = path;
  HealthMonitor mon(cfg);
  mon.record(hot_sample(1, 50.0));
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(obs::json::parse(lines[0])["stale"].is_null());
  std::remove(path.c_str());
}

TEST(Monitor, FlushSinksRunInRegistrationOrder) {
  HealthMonitor mon;
  std::vector<int> order;
  mon.add_flush_sink([&] { order.push_back(1); });
  mon.add_flush_sink([&] { order.push_back(2); });
  mon.add_flush_sink([&] { order.push_back(3); });
  mon.flush();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Monitor, CheckpointLatchIsConsumedOnce) {
  auto cfg = gamma_bound_config(10.0, {/*checkpoint=*/true, /*abort=*/false});
  HealthMonitor mon(cfg);
  EXPECT_FALSE(mon.consume_checkpoint_request());
  mon.record(hot_sample(1, 50.0));
  EXPECT_TRUE(mon.consume_checkpoint_request());
  EXPECT_FALSE(mon.consume_checkpoint_request()); // consumed
  EXPECT_FALSE(mon.abort_requested());            // checkpoint only
}

TEST(Monitor, AbortLatchKeepsTheTriggeringAlert) {
  auto cfg = gamma_bound_config(10.0, {/*checkpoint=*/false, /*abort=*/true});
  HealthMonitor mon(cfg);
  EXPECT_FALSE(mon.abort_requested());
  mon.record(hot_sample(7, 123.0));
  ASSERT_TRUE(mon.abort_requested());
  EXPECT_EQ(mon.abort_alert().step, 7);
  EXPECT_EQ(mon.abort_alert().quantity, "max_gamma");
  EXPECT_DOUBLE_EQ(mon.abort_alert().value, 123.0);
}

TEST(Monitor, AlertCallbackSeesEveryAlert) {
  auto cfg = gamma_bound_config(10.0);
  HealthMonitor mon(cfg);
  std::vector<Alert> seen;
  mon.set_alert_callback([&](const Alert& a) { seen.push_back(a); });
  mon.record(hot_sample(1, 50.0));
  mon.record(hot_sample(2, 1.0));
  mon.record(hot_sample(3, 60.0));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].step, 1);
  EXPECT_EQ(seen[1].step, 3);
}

TEST(Monitor, EnergyDriftRateFilledFromPreviousSample) {
  MonitorConfig cfg;
  cfg.log_to_stderr = false;
  HealthMonitor mon(cfg);
  LedgerSample a;
  a.step = 1;
  a.time = 1.0;
  a.field_energy_J = 2.0;
  mon.record(a);
  LedgerSample b;
  b.step = 2;
  b.time = 2.0;
  b.field_energy_J = 2.0 + 2e-3;
  mon.record(b);
  ASSERT_EQ(mon.history().size(), 2u);
  // (dE/E0)/dt = (2e-3 / 2) / 1 = 1e-3
  EXPECT_NEAR(mon.history().back().energy_drift_rate, 1e-3, 1e-12);
}

TEST(Monitor, HistoryLimitBoundsMemory) {
  MonitorConfig cfg;
  cfg.log_to_stderr = false;
  cfg.history_limit = 4;
  HealthMonitor mon(cfg);
  for (int i = 0; i < 10; ++i) { mon.record(hot_sample(i, 1.0)); }
  EXPECT_EQ(mon.history().size(), 4u);
  EXPECT_EQ(mon.history().front().step, 6);
  EXPECT_EQ(mon.num_samples(), 10); // the counter keeps the true total
}

TEST(Monitor, PublishesGaugesAndCounters) {
  obs::MetricsRegistry metrics;
  auto cfg = gamma_bound_config(10.0);
  HealthMonitor mon(cfg);
  mon.set_metrics(&metrics);
  mon.record(hot_sample(1, 50.0));
  EXPECT_DOUBLE_EQ(metrics.gauge_value("health_max_gamma"), 50.0);
  EXPECT_DOUBLE_EQ(metrics.gauge_value("health_field_energy_J"), 1.0);
  EXPECT_EQ(metrics.counter_value("health_probes"), 1);
  EXPECT_EQ(metrics.counter_value("health_alerts"), 1);
  EXPECT_EQ(metrics.counter_value("health_alerts_critical"), 1);
}

TEST(Monitor, CadenceLargerThanRunNeverFires) {
  MonitorConfig cfg;
  cfg.ledger_interval = 1000; // cadence N > total steps
  cfg.nan_interval = 0;
  cfg.residual_interval = 0;
  HealthMonitor mon(cfg);
  for (std::int64_t s = 1; s <= 20; ++s) { EXPECT_FALSE(mon.sample_due(s)); }
  EXPECT_TRUE(mon.sample_due(1000));
}

TEST(Monitor, WriteJsonlDumpsHistoryAndAlerts) {
  auto cfg = gamma_bound_config(10.0);
  HealthMonitor mon(cfg);
  mon.record(hot_sample(1, 5.0));
  mon.record(hot_sample(2, 50.0));
  const std::string lpath = "test_alerts_ledger.jsonl";
  const std::string apath = "test_alerts_log.jsonl";
  ASSERT_TRUE(mon.write_ledger_jsonl(lpath));
  ASSERT_TRUE(mon.write_alerts_jsonl(apath));
  EXPECT_EQ(read_lines(lpath).size(), 2u);
  EXPECT_EQ(read_lines(apath).size(), 1u);
  std::remove(lpath.c_str());
  std::remove(apath.c_str());
}

// --- end-to-end: watchdog abort out of Simulation::run -----------------------

core::SimulationConfig<2> periodic_config(int n = 32) {
  core::SimulationConfig<2> cfg;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = mrpic::IntVect2(16);
  cfg.shape_order = 2;
  return cfg;
}

TEST(AbortPath, BoundRuleAbortsRunAndLastAlertIsOnDisk) {
  const std::string path = "test_abort_alerts.jsonl";
  std::remove(path.c_str());

  core::Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = mrpic::IntVect2(2, 2);
  inj.temperature_ev = 100.0;
  sim.add_species(particles::Species::electron(), inj);

  MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.alerts_path = path;
  // num_particles is always > 0 here: the rule fires on the first sample.
  hcfg.watchdog.bounds.push_back(
      {"num_particles", 0.0, 1.0, Severity::Critical, {/*ckpt*/ false, /*abort*/ true}});
  sim.enable_health(hcfg);
  sim.init();

  bool flushed = false;
  sim.health()->add_flush_sink([&] { flushed = true; });

  try {
    sim.run(10);
    FAIL() << "expected health::AbortError";
  } catch (const AbortError& e) {
    EXPECT_EQ(e.alert().quantity, "num_particles");
    EXPECT_TRUE(e.alert().abort);
  }
  EXPECT_EQ(sim.step_count(), 1); // died at the end of the first step
  EXPECT_TRUE(flushed);           // telemetry sinks ran before the throw

  // The mid-run kill leaves the terminal alert durable on disk.
  const auto lines = read_lines(path);
  ASSERT_FALSE(lines.empty());
  const auto doc = obs::json::parse(lines.back());
  EXPECT_EQ(doc["quantity"].as_string(), "num_particles");
  EXPECT_TRUE(doc["abort"].as_bool());
  std::remove(path.c_str());
}

TEST(AbortPath, CheckpointActionForcesImmediateCheckpoint) {
  core::Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = mrpic::IntVect2(2, 2);
  sim.add_species(particles::Species::electron(), inj);

  MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  // Fires every sample; requests checkpoint-now but never aborts.
  hcfg.watchdog.dedup = false;
  hcfg.watchdog.bounds.push_back(
      {"num_particles", 0.0, 1.0, Severity::Warn, {/*ckpt*/ true, /*abort*/ false}});
  sim.enable_health(hcfg);

  resil::CheckpointPolicyConfig pcfg;
  pcfg.mode = resil::CheckpointMode::Periodic;
  pcfg.interval_steps = 1000; // the interval trigger never fires in 3 steps
  int writes = 0;
  sim.set_checkpoint_policy(resil::CheckpointPolicy(pcfg),
                            [&](core::Simulation<2>&) {
                              ++writes;
                              return true;
                            });
  sim.init();
  sim.run(3);
  // Every step's alert forced a checkpoint despite the 1000-step interval.
  EXPECT_EQ(writes, 3);
  EXPECT_EQ(sim.checkpoint_policy()->num_checkpoints(), 3);
  EXPECT_FALSE(sim.checkpoint_policy()->now_pending()); // cleared by each write
}

} // namespace
} // namespace mrpic::health
