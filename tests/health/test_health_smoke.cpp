// health_smoke: the end-to-end self-diagnostics drill. A FaultInjector
// plants silent NaN corruption in a field mid-run; the watchdog's NaN scan
// must catch it, force an immediate checkpoint through the resil policy
// (fault event "health_checkpoint") and abort with flushed telemetry. The
// control run without injection must finish alert-free.
//
// EnergyLedger is the quantitative acceptance gate: on a uniform thermal
// plasma over 200+ steps the ledger's relative energy drift stays bounded
// and the Esirkepov continuity residual holds to round-off.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/simulation.hpp"
#include "src/health/monitor.hpp"
#include "src/obs/json.hpp"
#include "src/resil/fault_injector.hpp"

namespace mrpic::health {
namespace {

core::SimulationConfig<2> periodic_config(int n = 32) {
  core::SimulationConfig<2> cfg;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = mrpic::IntVect2(16);
  cfg.shape_order = 2;
  return cfg;
}

TEST(HealthSmoke, InjectedFieldNanFiresAlertCheckpointAndAbort) {
  const std::string alerts_path = "health_smoke_alerts.jsonl";
  std::remove(alerts_path.c_str());

  // Field-only run: the corruption must be caught by the scan before any
  // particle ever gathers a NaN (a NaN position is undefined indexing).
  core::Simulation<2> sim(periodic_config());

  MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.nan_interval = 1;
  hcfg.alerts_path = alerts_path;
  // Default nan_action: checkpoint-now + abort.
  sim.enable_health(hcfg);

  resil::CheckpointPolicyConfig pcfg;
  pcfg.mode = resil::CheckpointMode::Periodic;
  pcfg.interval_steps = 1000000; // only a health action can trigger a write
  int writes = 0;
  sim.set_checkpoint_policy(resil::CheckpointPolicy(pcfg),
                            [&](core::Simulation<2>&) {
                              ++writes;
                              return true;
                            });

  resil::FaultPlan plan;
  plan.seed = 42;
  plan.field.step = 2; // corrupt after step 2's (clean) scan
  plan.field.nan_cells = 3;
  resil::FaultInjector fi(plan);
  int injected = 0;
  sim.set_step_callback([&](const obs::StepReport& r) {
    fi.set_step(r.step);
    injected += fi.corrupt_field<2>(sim.fields().E());
  });

  sim.init();
  bool flushed = false;
  sim.health()->add_flush_sink([&] { flushed = true; });

  bool aborted = false;
  try {
    sim.run(10);
  } catch (const AbortError& e) {
    aborted = true;
    EXPECT_EQ(e.alert().severity, Severity::Critical);
    EXPECT_EQ(e.alert().quantity.rfind("nan:", 0), 0u) << e.alert().quantity;
  }
  ASSERT_TRUE(aborted);
  EXPECT_EQ(injected, 3);
  // Step indices are 0-based: corrupted at the end of step 2 (the third
  // step), caught by step 3's scan — the run died after four steps.
  EXPECT_EQ(sim.step_count(), 4);
  EXPECT_TRUE(flushed);
  EXPECT_EQ(writes, 1); // checkpoint-now fired despite the huge interval

  // The forced write is distinguishable on the fault-event timeline.
  bool saw_health_ckpt = false;
  for (const auto& ev : sim.rank_recorder().fault_events()) {
    if (ev.kind == "health_checkpoint") { saw_health_ckpt = true; }
  }
  EXPECT_TRUE(saw_health_ckpt);

  // The terminal alert reached disk before the abort unwound.
  std::ifstream in(alerts_path);
  ASSERT_TRUE(in.good());
  std::string line, last;
  while (std::getline(in, line)) {
    if (!line.empty()) { last = line; }
  }
  ASSERT_FALSE(last.empty());
  const auto doc = obs::json::parse(last);
  EXPECT_EQ(doc["quantity"].as_string().rfind("nan:", 0), 0u);
  EXPECT_TRUE(doc["abort"].as_bool());
  std::remove(alerts_path.c_str());
}

TEST(HealthSmoke, UninjectedThermalPlasmaRunsAlertFree) {
  core::Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = mrpic::IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);

  MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.nan_interval = 1;
  hcfg.residual_interval = 5;
  // Representative production rules: none of them fires on a healthy run.
  hcfg.watchdog.bounds.push_back(
      {"max_gamma", 1.0, 1e3, Severity::Warn, {}});
  hcfg.watchdog.bounds.push_back(
      {"continuity_residual", 0.0, 1e-10, Severity::Critical, {}});
  DriftRule drift;
  drift.quantity = "field_energy_J";
  drift.z_threshold = 1e3; // thermal field growth is expected; only explosions
  drift.warmup = 8;
  hcfg.watchdog.drifts.push_back(drift);
  sim.enable_health(hcfg);
  sim.init();
  sim.run(20);

  EXPECT_EQ(sim.step_count(), 20);
  EXPECT_EQ(sim.health()->num_alerts(), 0);
  EXPECT_EQ(sim.health()->num_samples(), 20);
  // Scans ran and found nothing.
  for (const auto& s : sim.health()->history()) {
    EXPECT_EQ(s.nan_cells, 0) << "step " << s.step;
  }
}

TEST(HealthSmoke, EmptySpeciesAndZeroParticleBoxesProbeCleanly) {
  // Edge cases: a registered species with zero particles everywhere, plus a
  // species confined to one corner (most boxes empty). Probes, residuals and
  // the NaN scan must handle both without alerts.
  core::Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> empty_inj;
  empty_inj.density = plasma::uniform<2>(0.0); // below any density floor
  empty_inj.ppc = mrpic::IntVect2(1, 1);
  sim.add_species(particles::Species::electron(), empty_inj);
  plasma::InjectorConfig<2> corner;
  corner.density = plasma::slab<2>(1e23, 0.0, 0.4e-6); // 4 of 32 columns
  corner.ppc = mrpic::IntVect2(1, 1);
  sim.add_species(particles::Species::proton(), corner);

  MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.residual_interval = 2;
  sim.enable_health(hcfg);
  sim.init();
  sim.run(6);

  EXPECT_EQ(sim.health()->num_alerts(), 0);
  const auto& hist = sim.health()->history();
  ASSERT_EQ(hist.size(), 6u);
  ASSERT_EQ(hist.back().species.size(), 2u);
  EXPECT_EQ(hist.back().species[0].level0, 0); // empty species stays empty
  EXPECT_GT(hist.back().species[1].level0, 0);
  for (const auto& s : hist) {
    if (std::isnan(s.continuity_residual)) { continue; } // not probed that step
    EXPECT_LT(s.continuity_residual, 1e-10) << "step " << s.step;
  }
}

TEST(EnergyLedger, ThermalPlasmaDriftAndContinuityGates) {
  core::Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = mrpic::IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);

  MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.ledger_interval = 1;
  hcfg.nan_interval = 5;
  hcfg.residual_interval = 10;
  sim.enable_health(hcfg);
  sim.init();
  sim.run(200);

  const auto& hist = sim.health()->history();
  ASSERT_EQ(hist.size(), 200u);
  EXPECT_EQ(sim.health()->num_alerts(), 0);

  // Energy gate: bounded relative drift of the total (field + kinetic)
  // energy over the full 200-step window. The quiet thermal plasma heats
  // numerically but slowly; 10% over 200 steps is far above the measured
  // drift yet far below any instability.
  const double e0 = hist.front().total_energy_J();
  const double e1 = hist.back().total_energy_J();
  ASSERT_GT(e0, 0.0);
  EXPECT_LT(std::abs(e1 - e0) / e0, 0.10);

  // Continuity gate: Esirkepov keeps (drho/dt + div J) at round-off. The
  // residual is normalized by max|rho_new|/dt, so 1e-12 is a genuine
  // machine-precision statement, probed every 10th step.
  int probed = 0;
  for (const auto& s : hist) {
    if (std::isnan(s.continuity_residual)) { continue; }
    ++probed;
    EXPECT_LE(s.continuity_residual, 1e-12) << "step " << s.step;
    // Gauss residual is probed alongside and must at least be finite.
    EXPECT_TRUE(std::isfinite(s.gauss_residual)) << "step " << s.step;
  }
  EXPECT_EQ(probed, 20);

  // Charge/count conservation in a periodic box, straight off the ledger.
  EXPECT_EQ(hist.front().num_particles, hist.back().num_particles);
  EXPECT_NEAR(hist.back().total_charge_C / hist.front().total_charge_C, 1.0, 1e-12);
  EXPECT_EQ(hist.back().escaped, 0);
  EXPECT_EQ(hist.back().swept, 0);

  // CFL margin: dt was chosen strictly below the fastest-wave limit.
  EXPECT_GT(hist.back().cfl_margin, 0.0);
  EXPECT_LT(hist.back().cfl_margin, 1.0);
}

} // namespace
} // namespace mrpic::health
