// Watchdog rule evaluation: EWMA detector statistics, absolute bounds,
// drift anomalies, the NaN rule, and alert deduplication across consecutive
// firing steps (emit once, re-arm after the condition clears).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/health/watchdog.hpp"
#include "src/obs/json.hpp"

namespace mrpic::health {
namespace {

LedgerSample sample(std::int64_t step, double total_energy) {
  LedgerSample s;
  s.step = step;
  s.time = static_cast<double>(step) * 1e-16;
  s.field_energy_J = total_energy;
  return s;
}

TEST(Ewma, WarmupReturnsNanThenZScores) {
  EwmaDetector det(0.2, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isnan(det.update(10.0))) << i;
    EXPECT_FALSE(det.warmed_up() && i < 3);
  }
  EXPECT_TRUE(det.warmed_up());
  // Constant series: post-warmup identical value is not an anomaly.
  const double z_same = det.update(10.0);
  EXPECT_TRUE(std::isfinite(z_same));
  EXPECT_LT(std::abs(z_same), 1.0);
  // A huge excursion produces a huge z (variance floor keeps it finite).
  const double z_jump = det.update(1e6);
  EXPECT_TRUE(std::isfinite(z_jump));
  EXPECT_GT(std::abs(z_jump), 100.0);
}

TEST(Ewma, NonFiniteInputIsNotAbsorbed) {
  EwmaDetector det(0.5, 1);
  det.update(1.0);
  const int n_before = det.samples();
  const double mean_before = det.mean();
  EXPECT_TRUE(std::isnan(det.update(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_EQ(det.samples(), n_before);
  EXPECT_DOUBLE_EQ(det.mean(), mean_before);
}

TEST(Ewma, WarmupLongerThanHistoryNeverFires) {
  // Edge case: a rule with warmup 16 over a 5-sample run must stay silent.
  EwmaDetector det(0.1, 16);
  for (int i = 0; i < 5; ++i) { EXPECT_TRUE(std::isnan(det.update(1.0 + i))); }
  EXPECT_FALSE(det.warmed_up());
}

TEST(Watchdog, BoundRuleFiresOutsideInterval) {
  WatchdogConfig cfg;
  cfg.bounds.push_back({"max_gamma", 0.0, 100.0, Severity::Warn, {}});
  Watchdog wd(cfg);

  auto s = sample(1, 1.0);
  s.max_gamma = 50.0;
  EXPECT_TRUE(wd.evaluate(s).empty());

  s = sample(2, 1.0);
  s.max_gamma = 250.0;
  const auto alerts = wd.evaluate(s);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].quantity, "max_gamma");
  EXPECT_DOUBLE_EQ(alerts[0].value, 250.0);
  EXPECT_DOUBLE_EQ(alerts[0].bound, 100.0);
  EXPECT_EQ(alerts[0].severity, Severity::Warn);
  EXPECT_FALSE(alerts[0].abort);
}

TEST(Watchdog, BoundRuleSkipsUnprobedQuantities) {
  WatchdogConfig cfg;
  cfg.bounds.push_back({"continuity_residual", 0.0, 1e-10, Severity::Critical, {}});
  Watchdog wd(cfg);
  // Residual not probed this sample (NaN): the rule must not fire.
  EXPECT_TRUE(wd.evaluate(sample(1, 1.0)).empty());
}

TEST(Watchdog, DedupSuppressesRepeatsAndReArms) {
  WatchdogConfig cfg;
  cfg.bounds.push_back({"max_gamma", 0.0, 10.0, Severity::Warn, {}});
  Watchdog wd(cfg);

  auto hot = sample(1, 1.0);
  hot.max_gamma = 20.0;
  EXPECT_EQ(wd.evaluate(hot).size(), 1u);
  hot.step = 2;
  EXPECT_TRUE(wd.evaluate(hot).empty()); // still firing: deduplicated
  auto cool = sample(3, 1.0);
  cool.max_gamma = 5.0;
  EXPECT_TRUE(wd.evaluate(cool).empty()); // condition clears
  hot.step = 4;
  EXPECT_EQ(wd.evaluate(hot).size(), 1u); // re-armed
}

TEST(Watchdog, DedupDisabledEmitsEveryStep) {
  WatchdogConfig cfg;
  cfg.dedup = false;
  cfg.bounds.push_back({"max_gamma", 0.0, 10.0, Severity::Warn, {}});
  Watchdog wd(cfg);
  auto hot = sample(1, 1.0);
  hot.max_gamma = 20.0;
  EXPECT_EQ(wd.evaluate(hot).size(), 1u);
  hot.step = 2;
  EXPECT_EQ(wd.evaluate(hot).size(), 1u);
}

TEST(Watchdog, NanRuleCarriesConfiguredActions) {
  WatchdogConfig cfg;
  cfg.nan_severity = Severity::Critical;
  cfg.nan_action = {/*checkpoint=*/true, /*abort=*/true};
  Watchdog wd(cfg);

  auto clean = sample(1, 1.0);
  clean.nan_cells = 0;
  EXPECT_TRUE(wd.evaluate(clean).empty());

  auto bad = sample(2, 1.0);
  bad.nan_cells = 3;
  bad.nan_field = "E";
  const auto alerts = wd.evaluate(bad);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].quantity, "nan:E");
  EXPECT_EQ(alerts[0].severity, Severity::Critical);
  EXPECT_TRUE(alerts[0].checkpoint);
  EXPECT_TRUE(alerts[0].abort);
  EXPECT_DOUBLE_EQ(alerts[0].value, 3.0);
}

TEST(Watchdog, DriftRuleFiresOnStepChange) {
  WatchdogConfig cfg;
  DriftRule r;
  r.quantity = "total_energy_J";
  r.z_threshold = 6.0;
  r.alpha = 0.2;
  r.warmup = 8;
  cfg.drifts.push_back(r);
  Watchdog wd(cfg);

  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(wd.evaluate(sample(i, 1.0 + 1e-13 * i)).empty()) << i;
  }
  const auto alerts = wd.evaluate(sample(20, 2.0)); // step change
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].quantity, "total_energy_J");
  EXPECT_DOUBLE_EQ(alerts[0].bound, 6.0);
}

TEST(Watchdog, ResetForgetsEwmaAndDedupState) {
  WatchdogConfig cfg;
  cfg.bounds.push_back({"max_gamma", 0.0, 10.0, Severity::Warn, {}});
  DriftRule r;
  r.quantity = "total_energy_J";
  r.warmup = 2;
  cfg.drifts.push_back(r);
  Watchdog wd(cfg);

  auto hot = sample(1, 1.0);
  hot.max_gamma = 20.0;
  EXPECT_EQ(wd.evaluate(hot).size(), 1u);
  wd.reset();
  hot.step = 2;
  // After reset the still-true bound violation is a fresh alert.
  EXPECT_EQ(wd.evaluate(hot).size(), 1u);
}

TEST(Watchdog, AlertJsonRoundTrips) {
  Alert a;
  a.step = 5;
  a.severity = Severity::Critical;
  a.quantity = "nan:fine_B";
  a.value = 12;
  a.bound = 0;
  a.checkpoint = true;
  a.abort = true;
  a.message = "12 non-finite cell(s) in fine_B";
  std::ostringstream os;
  write_alert(a, os);
  const auto doc = obs::json::parse(os.str());
  EXPECT_EQ(doc["step"].as_int(), 5);
  EXPECT_EQ(doc["severity"].as_string(), "critical");
  EXPECT_EQ(doc["quantity"].as_string(), "nan:fine_B");
  EXPECT_TRUE(doc["checkpoint"].as_bool());
  EXPECT_TRUE(doc["abort"].as_bool());
  EXPECT_EQ(doc["message"].as_string(), "12 non-finite cell(s) in fine_B");
}

} // namespace
} // namespace mrpic::health
