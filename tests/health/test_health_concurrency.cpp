// HealthConcurrency: hammer the monitor's mutex-guarded surface from
// concurrent threads — recorders feeding samples (some of them alerting)
// racing snapshot readers and counters. Run under TSan by the
// health_concurrency_sanitized ctest; also a functional total-count check.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/health/monitor.hpp"
#include "src/obs/metrics.hpp"

namespace mrpic::health {
namespace {

TEST(HealthConcurrency, ConcurrentRecordersAndSnapshotReaders) {
  MonitorConfig cfg;
  cfg.log_to_stderr = false;
  cfg.history_limit = 128;
  cfg.watchdog.dedup = false;
  cfg.watchdog.bounds.push_back({"max_gamma", 0.0, 100.0, Severity::Warn, {}});
  HealthMonitor mon(cfg);
  obs::MetricsRegistry metrics;
  mon.set_metrics(&metrics);
  std::atomic<int> cb_alerts{0};
  mon.set_alert_callback([&](const Alert&) { cb_alerts.fetch_add(1); });

  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kSamplesPerWriter = 200;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&mon, w] {
      for (int i = 0; i < kSamplesPerWriter; ++i) {
        LedgerSample s;
        s.step = w * kSamplesPerWriter + i;
        s.field_energy_J = 1.0 + 1e-3 * i;
        // Every 10th sample violates the gamma bound.
        s.max_gamma = (i % 10 == 9) ? 500.0 : 1.0;
        mon.record(s);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&mon, &stop] {
      while (!stop.load()) {
        const auto hist = mon.snapshot_history();
        const auto alerts = mon.snapshot_alerts();
        EXPECT_LE(hist.size(), 128u);
        EXPECT_LE(static_cast<std::int64_t>(alerts.size()), mon.num_alerts());
        (void)mon.num_samples();
        (void)mon.num_alerts(Severity::Warn);
        (void)mon.consume_checkpoint_request();
        (void)mon.abort_requested();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) { threads[w].join(); }
  stop.store(true);
  for (int r = 0; r < kReaders; ++r) { threads[kWriters + r].join(); }

  EXPECT_EQ(mon.num_samples(), kWriters * kSamplesPerWriter);
  // dedup is off and each writer alerts on 20 of its samples.
  EXPECT_EQ(mon.num_alerts(), kWriters * 20);
  EXPECT_EQ(cb_alerts.load(), kWriters * 20);
  EXPECT_EQ(mon.history().size(), 128u);
  EXPECT_EQ(metrics.counter_value("health_probes"), kWriters * kSamplesPerWriter);
}

TEST(HealthConcurrency, ConcurrentFlushIsSafe) {
  HealthMonitor mon;
  std::atomic<int> flushes{0};
  mon.add_flush_sink([&] { flushes.fetch_add(1); });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mon] {
      for (int i = 0; i < 50; ++i) { mon.flush(); }
    });
  }
  for (auto& t : threads) { t.join(); }
  EXPECT_EQ(flushes.load(), 200);
}

} // namespace
} // namespace mrpic::health
