// Checkpoint/restart: a restored run must continue BIT-IDENTICALLY to the
// uninterrupted original — fields, particles, window anchor, patch state.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/io/checkpoint.hpp"

namespace mrpic::io {
namespace {

using namespace mrpic::constants;

// A busy configuration: laser + plasma + PML + moving window + MR patch.
std::unique_ptr<core::Simulation<2>> build_sim() {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(95, 31));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(9.6e-6, 3.2e-6);
  cfg.periodic = {false, true};
  cfg.use_pml = true;
  cfg.pml.npml = 6;
  cfg.max_grid_size = IntVect2(48, 32);
  cfg.shape_order = 2;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e24);
  inj.ppc = IntVect2(2, 1);
  inj.temperature_ev = 50.0;
  sim->add_species(particles::Species::electron(), inj);

  laser::LaserConfig lc;
  lc.a0 = 0.8;
  lc.waist = 1.2e-6;
  lc.duration = 5e-15;
  lc.t_peak = 8e-15;
  lc.x_antenna = 1.0e-6;
  lc.center = {1.6e-6, 0};
  sim->add_laser(lc);

  mr::MRPatch<2>::Config pcfg;
  pcfg.region = Box2(IntVect2(40, 8), IntVect2(71, 23));
  pcfg.transition_cells = 2;
  pcfg.pml.npml = 6;
  sim->enable_mr_patch(pcfg);

  sim->set_moving_window(0, c, /*start_time=*/10e-15);
  sim->init();
  return sim;
}

bool fields_identical(const MultiFab<2>& a, const MultiFab<2>& b) {
  if (a.num_fabs() != b.num_fabs()) { return false; }
  for (int m = 0; m < a.num_fabs(); ++m) {
    if (a.fab(m).size() != b.fab(m).size()) { return false; }
    for (std::size_t i = 0; i < a.fab(m).size(); ++i) {
      if (a.fab(m).data()[i] != b.fab(m).data()[i]) { return false; }
    }
  }
  return true;
}

bool particles_identical(const particles::ParticleContainer<2>& a,
                         const particles::ParticleContainer<2>& b) {
  if (a.num_tiles() != b.num_tiles()) { return false; }
  for (int t = 0; t < a.num_tiles(); ++t) {
    const auto& ta = a.tile(t);
    const auto& tb = b.tile(t);
    if (ta.size() != tb.size()) { return false; }
    for (std::size_t p = 0; p < ta.size(); ++p) {
      for (int d = 0; d < 2; ++d) {
        if (ta.x[d][p] != tb.x[d][p]) { return false; }
      }
      for (int cc = 0; cc < 3; ++cc) {
        if (ta.u[cc][p] != tb.u[cc][p]) { return false; }
      }
      if (ta.w[p] != tb.w[p]) { return false; }
    }
  }
  return true;
}

TEST(Checkpoint, RestartContinuesBitIdentically) {
  const std::string path = "ckpt_test.bin";

  // Reference: 12 + 8 steps straight through (crosses the window start).
  auto ref = build_sim();
  ref->run(12);
  auto gold = build_sim();
  gold->run(12);
  ASSERT_TRUE(write_checkpoint(path, *gold));
  ref->run(8);

  // Restore into a freshly built simulation and continue.
  auto restored = build_sim();
  ASSERT_TRUE(read_checkpoint(path, *restored));
  EXPECT_EQ(restored->step_count(), 12);
  EXPECT_DOUBLE_EQ(restored->time(), gold->time());
  restored->run(8);

  EXPECT_EQ(restored->step_count(), ref->step_count());
  EXPECT_DOUBLE_EQ(restored->time(), ref->time());
  EXPECT_TRUE(fields_identical(restored->fields().E(), ref->fields().E()));
  EXPECT_TRUE(fields_identical(restored->fields().B(), ref->fields().B()));
  EXPECT_TRUE(fields_identical(restored->patch()->fine().E(), ref->patch()->fine().E()));
  EXPECT_TRUE(particles_identical(restored->species_level0(0), ref->species_level0(0)));
  EXPECT_TRUE(particles_identical(restored->species_patch(0), ref->species_patch(0)));
  EXPECT_DOUBLE_EQ(restored->geom().prob_lo()[0], ref->geom().prob_lo()[0]);
  std::remove(path.c_str());
}

TEST(Checkpoint, RoundTripPreservesStateExactly) {
  const std::string path = "ckpt_roundtrip.bin";
  auto sim = build_sim();
  sim->run(5);
  ASSERT_TRUE(write_checkpoint(path, *sim));
  auto copy = build_sim();
  ASSERT_TRUE(read_checkpoint(path, *copy));
  EXPECT_TRUE(fields_identical(sim->fields().E(), copy->fields().E()));
  EXPECT_TRUE(fields_identical(sim->fields().J(), copy->fields().J()));
  EXPECT_TRUE(fields_identical(sim->patch()->coarse().B(), copy->patch()->coarse().B()));
  EXPECT_TRUE(particles_identical(sim->species_level0(0), copy->species_level0(0)));
  EXPECT_DOUBLE_EQ(copy->window().accumulated(), sim->window().accumulated());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongStructure) {
  const std::string path = "ckpt_bad.bin";
  auto sim = build_sim();
  sim->run(2);
  ASSERT_TRUE(write_checkpoint(path, *sim));

  // A simulation without the MR patch must refuse this checkpoint.
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(95, 31));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(9.6e-6, 3.2e-6);
  cfg.periodic = {false, true};
  cfg.use_pml = true;
  cfg.pml.npml = 6;
  cfg.max_grid_size = IntVect2(48, 32);
  core::Simulation<2> other(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e24);
  inj.ppc = IntVect2(2, 1);
  other.add_species(particles::Species::electron(), inj);
  other.init();
  EXPECT_FALSE(read_checkpoint(path, other));

  EXPECT_FALSE(read_checkpoint("does_not_exist.bin", *sim));
  std::remove(path.c_str());
}

// --- v2 checksum integrity ------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os(std::ios::binary);
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointIntegrity, WritesV2MagicAndChecksumTrailer) {
  const std::string path = "ckpt_v2.bin";
  auto sim = build_sim();
  sim->run(2);
  ASSERT_TRUE(write_checkpoint(path, *sim));

  const std::string bytes = slurp(path);
  ASSERT_GE(bytes.size(), 16u);
  std::uint64_t magic = 0, stored = 0;
  std::memcpy(&magic, bytes.data(), 8);
  std::memcpy(&stored, bytes.data() + bytes.size() - 8, 8);
  EXPECT_EQ(magic, checkpoint_magic_v2);
  EXPECT_EQ(stored, fnv1a64(bytes.data() + 8, bytes.size() - 16));
  std::remove(path.c_str());
}

TEST(CheckpointIntegrity, TruncatedFileRejected) {
  const std::string path = "ckpt_trunc.bin";
  auto sim = build_sim();
  sim->run(3);
  ASSERT_TRUE(write_checkpoint(path, *sim));

  const std::string bytes = slurp(path);
  // Cut mid-payload (a crash during the write) and just inside the trailer.
  for (const std::size_t keep : {bytes.size() / 2, bytes.size() - 3}) {
    spit(path, bytes.substr(0, keep));
    auto victim = build_sim();
    EXPECT_FALSE(read_checkpoint(path, *victim)) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST(CheckpointIntegrity, CorruptedFileRejectedWithoutTouchingState) {
  const std::string path = "ckpt_flip.bin";
  auto sim = build_sim();
  sim->run(3);
  ASSERT_TRUE(write_checkpoint(path, *sim));

  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x40; // single bit flip mid-payload
  spit(path, bytes);

  auto victim = build_sim();
  victim->run(1);
  EXPECT_FALSE(read_checkpoint(path, *victim));
  // The checksum is verified before any state is restored: the victim must
  // be untouched, i.e. still bit-identical to a twin run the same way.
  auto twin = build_sim();
  twin->run(1);
  EXPECT_EQ(victim->step_count(), 1);
  EXPECT_TRUE(fields_identical(victim->fields().E(), twin->fields().E()));
  EXPECT_TRUE(particles_identical(victim->species_level0(0), twin->species_level0(0)));
  std::remove(path.c_str());
}

TEST(CheckpointIntegrity, V1FilesStillReadable) {
  const std::string path = "ckpt_v1.bin";
  auto sim = build_sim();
  sim->run(4);
  ASSERT_TRUE(write_checkpoint(path, *sim));

  // Synthesize a legacy v1 file: same payload, v1 magic, no trailer.
  std::string bytes = slurp(path);
  std::uint64_t v1 = checkpoint_magic;
  std::memcpy(bytes.data(), &v1, 8);
  spit(path, bytes.substr(0, bytes.size() - 8));

  auto restored = build_sim();
  ASSERT_TRUE(read_checkpoint(path, *restored));
  EXPECT_EQ(restored->step_count(), 4);
  EXPECT_TRUE(fields_identical(restored->fields().E(), sim->fields().E()));
  EXPECT_TRUE(particles_identical(restored->species_level0(0), sim->species_level0(0)));
  std::remove(path.c_str());
}

} // namespace
} // namespace mrpic::io
