// Restart under mesh refinement: checkpoint/restart of a hybrid-target-style
// configuration (solid foil + gas, ratio-2 MR patch over the foil, PML on
// the open boundaries, moving window already advancing when the checkpoint
// is taken) must continue bit-identically — the patch fine/coarse solution,
// both particle levels and the window anchor all round-trip exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "src/io/checkpoint.hpp"

namespace mrpic::io {
namespace {

using namespace mrpic::constants;

// The hybrid solid-gas target of examples/hybrid_target_mr.cpp at test
// scale: foil slab resolved by the patch, gas behind it, leftward laser.
std::unique_ptr<core::Simulation<2>> build_hybrid_sim() {
  const Real wavelength = 0.8e-6;
  const Real nc = plasma::critical_density(wavelength);

  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(119, 23));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(6.0e-6, 1.2e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 6;
  cfg.max_grid_size = IntVect2(60, 24);
  cfg.shape_order = 3;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> gas_inj;
  gas_inj.density = plasma::uniform<2>(0.02 * nc);
  gas_inj.ppc = IntVect2(1, 1);
  sim->add_species(particles::Species::electron("gas_electrons"), gas_inj);

  plasma::InjectorConfig<2> solid_inj;
  solid_inj.density = plasma::slab<2>(4 * nc, 1.5e-6, 2.2e-6);
  solid_inj.ppc = IntVect2(2, 2);
  solid_inj.temperature_ev = 10.0;
  sim->add_species(particles::Species::electron("solid_electrons"), solid_inj);

  laser::LaserConfig lc;
  lc.a0 = 2.0;
  lc.wavelength = wavelength;
  lc.waist = 0.8e-6;
  lc.duration = 4e-15;
  lc.t_peak = 6e-15;
  lc.x_antenna = 4.0e-6;
  lc.center = {2.0e-6, 0};
  sim->add_laser(lc);

  // Ratio-2 patch over the foil and the gap in front of it.
  mr::MRPatch<2>::Config pcfg;
  pcfg.region = Box2(IntVect2(24, 4), IntVect2(55, 19));
  pcfg.ratio = 2;
  pcfg.transition_cells = 2;
  pcfg.pml.npml = 4;
  sim->enable_mr_patch(pcfg);

  // Window starts almost immediately so it is in motion at checkpoint time.
  sim->set_moving_window(0, c, /*start_time=*/1e-15);
  sim->init();
  return sim;
}

bool fields_identical(const MultiFab<2>& a, const MultiFab<2>& b) {
  if (a.num_fabs() != b.num_fabs()) { return false; }
  for (int m = 0; m < a.num_fabs(); ++m) {
    if (a.fab(m).size() != b.fab(m).size()) { return false; }
    for (std::size_t i = 0; i < a.fab(m).size(); ++i) {
      if (a.fab(m).data()[i] != b.fab(m).data()[i]) { return false; }
    }
  }
  return true;
}

bool particles_identical(const particles::ParticleContainer<2>& a,
                         const particles::ParticleContainer<2>& b) {
  if (a.num_tiles() != b.num_tiles()) { return false; }
  for (int t = 0; t < a.num_tiles(); ++t) {
    const auto& ta = a.tile(t);
    const auto& tb = b.tile(t);
    if (ta.size() != tb.size()) { return false; }
    for (std::size_t p = 0; p < ta.size(); ++p) {
      for (int d = 0; d < 2; ++d) {
        if (ta.x[d][p] != tb.x[d][p]) { return false; }
      }
      for (int cc = 0; cc < 3; ++cc) {
        if (ta.u[cc][p] != tb.u[cc][p]) { return false; }
      }
      if (ta.w[p] != tb.w[p]) { return false; }
    }
  }
  return true;
}

TEST(RestartMR, HybridTargetRestartContinuesBitIdentically) {
  const std::string path = "ckpt_hybrid_mr.bin";
  const int steps_before = 25;
  const int steps_after = 15;

  // Reference runs straight through; gold stops at the checkpoint.
  auto ref = build_hybrid_sim();
  ref->run(steps_before);
  auto gold = build_hybrid_sim();
  gold->run(steps_before);

  // The interesting regime: window in motion, patch active, PML charged.
  ASSERT_GT(gold->window().accumulated(), 0.0)
      << "config error: the moving window must be advancing at checkpoint time";
  ASSERT_TRUE(gold->patch() != nullptr && gold->patch()->active());
  ASSERT_GT(gold->total_particles(), 0);

  ASSERT_TRUE(write_checkpoint(path, *gold));
  ref->run(steps_after);

  auto restored = build_hybrid_sim();
  ASSERT_TRUE(read_checkpoint(path, *restored));
  EXPECT_EQ(restored->step_count(), steps_before);
  EXPECT_DOUBLE_EQ(restored->time(), gold->time());
  EXPECT_DOUBLE_EQ(restored->window().accumulated(), gold->window().accumulated());
  restored->run(steps_after);

  EXPECT_EQ(restored->step_count(), ref->step_count());
  EXPECT_DOUBLE_EQ(restored->time(), ref->time());
  EXPECT_DOUBLE_EQ(restored->geom().prob_lo()[0], ref->geom().prob_lo()[0]);
  EXPECT_TRUE(fields_identical(restored->fields().E(), ref->fields().E()));
  EXPECT_TRUE(fields_identical(restored->fields().B(), ref->fields().B()));
  EXPECT_TRUE(fields_identical(restored->fields().J(), ref->fields().J()));
  ASSERT_TRUE(restored->patch()->active() && ref->patch()->active());
  EXPECT_TRUE(fields_identical(restored->patch()->fine().E(), ref->patch()->fine().E()));
  EXPECT_TRUE(fields_identical(restored->patch()->fine().B(), ref->patch()->fine().B()));
  EXPECT_TRUE(fields_identical(restored->patch()->coarse().E(), ref->patch()->coarse().E()));
  for (int s = 0; s < ref->num_species(); ++s) {
    EXPECT_TRUE(particles_identical(restored->species_level0(s), ref->species_level0(s))) << s;
    EXPECT_TRUE(particles_identical(restored->species_patch(s), ref->species_patch(s))) << s;
  }
  std::remove(path.c_str());
}

TEST(RestartMR, PmlInteriorStateRoundTrips) {
  const std::string path = "ckpt_hybrid_pml.bin";
  auto sim = build_hybrid_sim();
  sim->run(12);
  ASSERT_TRUE(write_checkpoint(path, *sim));

  auto copy = build_hybrid_sim();
  ASSERT_TRUE(read_checkpoint(path, *copy));
  ASSERT_TRUE(copy->domain_pml() != nullptr);
  EXPECT_TRUE(fields_identical(copy->domain_pml()->split_fab(),
                               sim->domain_pml()->split_fab()));
  EXPECT_TRUE(fields_identical(copy->patch()->fine_pml().split_fab(),
                               sim->patch()->fine_pml().split_fab()));
  EXPECT_TRUE(fields_identical(copy->patch()->coarse_pml().split_fab(),
                               sim->patch()->coarse_pml().split_fab()));
  std::remove(path.c_str());
}

} // namespace
} // namespace mrpic::io
