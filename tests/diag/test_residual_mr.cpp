// ResidualMR: the charge-conservation invariants on a mesh-refined run. The
// hybrid solid-gas target of the MR restart test (ratio-2 patch over the
// foil, PML, laser, moving window) probed by the health monitor's residual
// pipeline: the Esirkepov continuity identity must hold to round-off on the
// coarse level AND on the fine patch level (interior, away from the
// transition band and patch PML), while everything is in motion.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/simulation.hpp"
#include "src/health/monitor.hpp"

namespace mrpic::diag {
namespace {

using namespace mrpic::constants;

// tests/io/test_restart_mr.cpp's hybrid target, with health probes on.
std::unique_ptr<core::Simulation<2>> build_hybrid_sim(int residual_interval) {
  const Real wavelength = 0.8e-6;
  const Real nc = plasma::critical_density(wavelength);

  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(119, 23));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(6.0e-6, 1.2e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 6;
  cfg.max_grid_size = IntVect2(60, 24);
  cfg.shape_order = 3;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> gas_inj;
  gas_inj.density = plasma::uniform<2>(0.02 * nc);
  gas_inj.ppc = IntVect2(1, 1);
  sim->add_species(particles::Species::electron("gas_electrons"), gas_inj);

  plasma::InjectorConfig<2> solid_inj;
  solid_inj.density = plasma::slab<2>(4 * nc, 1.5e-6, 2.2e-6);
  solid_inj.ppc = IntVect2(2, 2);
  solid_inj.temperature_ev = 10.0;
  sim->add_species(particles::Species::electron("solid_electrons"), solid_inj);

  laser::LaserConfig lc;
  lc.a0 = 2.0;
  lc.wavelength = wavelength;
  lc.waist = 0.8e-6;
  lc.duration = 4e-15;
  lc.t_peak = 6e-15;
  lc.x_antenna = 4.0e-6;
  lc.center = {2.0e-6, 0};
  sim->add_laser(lc);

  mr::MRPatch<2>::Config pcfg;
  pcfg.region = Box2(IntVect2(24, 4), IntVect2(55, 19));
  pcfg.ratio = 2;
  pcfg.transition_cells = 2;
  pcfg.pml.npml = 4;
  sim->enable_mr_patch(pcfg);

  sim->set_moving_window(0, c, /*start_time=*/1e-15);

  health::MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.nan_interval = 1;
  hcfg.residual_interval = residual_interval;
  sim->enable_health(hcfg);

  sim->init();
  return sim;
}

TEST(ResidualMR, ContinuityHoldsOnCoarseAndFineLevels) {
  auto sim = build_hybrid_sim(/*residual_interval=*/3);
  sim->run(24);
  ASSERT_TRUE(sim->patch() != nullptr && sim->patch()->active());
  ASSERT_GT(sim->species_patch(1).total_particles(), 0)
      << "config error: the foil must populate the fine patch";

  int probed_coarse = 0, probed_fine = 0;
  for (const auto& s : sim->health()->history()) {
    if (!std::isnan(s.continuity_residual)) {
      ++probed_coarse;
      // Esirkepov on level 0: round-off, normalized by max|rho|/dt.
      EXPECT_LE(s.continuity_residual, 1e-12) << "step " << s.step;
    }
    if (!std::isnan(s.continuity_residual_fine)) {
      ++probed_fine;
      // Same identity inside the patch interior (shrunk past the
      // transition band), with the fine particles' own deposition.
      EXPECT_LE(s.continuity_residual_fine, 1e-12) << "step " << s.step;
    }
    // A laser antenna radiates charge-free fields, so Gauss is not gated
    // here — but where probed it must at least be finite.
    if (!std::isnan(s.gauss_residual)) {
      EXPECT_TRUE(std::isfinite(s.gauss_residual)) << "step " << s.step;
    }
  }
  EXPECT_EQ(probed_coarse, 8); // steps 3,6,...,24
  EXPECT_EQ(probed_fine, 8);   // the patch is active from init
  EXPECT_EQ(sim->health()->num_alerts(health::Severity::Critical), 0);
}

TEST(ResidualMR, WindowShiftStepsSkipGaussButKeepContinuity) {
  // 48 steps: the window starts at 1 fs and needs a few fs to scroll whole
  // 50 nm cells, so the run must cross several actual grid shifts.
  auto sim = build_hybrid_sim(/*residual_interval=*/1);
  sim->run(48);
  ASSERT_GT(sim->window().accumulated(), 0.0)
      << "config error: the moving window must have advanced";

  int shifted_probes = 0;
  for (const auto& s : sim->health()->history()) {
    // Continuity is snapshotted before the shift: probed on every step.
    ASSERT_FALSE(std::isnan(s.continuity_residual)) << "step " << s.step;
    EXPECT_LE(s.continuity_residual, 1e-12) << "step " << s.step;
    // Gauss is NaN exactly on the steps whose grid scrolled mid-step.
    if (std::isnan(s.gauss_residual)) { ++shifted_probes; }
  }
  EXPECT_GT(shifted_probes, 0);
  EXPECT_LT(shifted_probes, 48);

  // Swept-particle accounting: the window dropped plasma behind it and the
  // ledger saw it.
  EXPECT_GT(sim->health()->history().back().swept, 0);
}

TEST(ResidualMR, EscapedParticlesAreAccounted) {
  // Open boundaries without a moving window: hot plasma leaks out and the
  // ledger's escaped counter must pick it up.
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(31, 31));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(3.2e-6, 3.2e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 4;
  cfg.max_grid_size = IntVect2(16);
  cfg.shape_order = 2;
  core::Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 5e4; // hot: fast tails reach the walls quickly
  sim.add_species(particles::Species::electron(), inj);
  health::MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  sim.enable_health(hcfg);
  sim.init();
  const auto n0 = sim.total_particles();
  sim.run(40);
  const auto& last = sim.health()->history().back();
  EXPECT_GT(last.escaped, 0);
  EXPECT_EQ(last.num_particles + last.escaped, n0);
  EXPECT_EQ(last.num_particles, sim.total_particles());
}

} // namespace
} // namespace mrpic::diag
