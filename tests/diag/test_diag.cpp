#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/diag/csv_writer.hpp"
#include "src/diag/spectrum.hpp"

namespace mrpic::diag {
namespace {

using namespace mrpic::constants;

mrpic::Geometry<2> make_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(15, 15)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(1.6e-6, 1.6e-6),
                            {false, false});
}

// Proper velocity for a given kinetic energy [J].
Real u_of_energy(Real e_kin) {
  const Real gamma = 1 + e_kin / (m_e * c * c);
  return c * std::sqrt(gamma * gamma - 1);
}

TEST(Spectrum, HistogramBinsAndWeights) {
  const auto geom = make_geom();
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>(geom.domain()));
  const Real mev = 1e6 * q_e;
  pc.add_particle(geom, {1e-7, 1e-7}, {u_of_energy(50 * mev), 0, 0}, 2.0);
  pc.add_particle(geom, {2e-7, 1e-7}, {u_of_energy(51 * mev), 0, 0}, 3.0);
  pc.add_particle(geom, {3e-7, 1e-7}, {u_of_energy(150 * mev), 0, 0}, 1.0);
  pc.add_particle(geom, {4e-7, 1e-7}, {0, 0, 0}, 9.0); // below range

  const auto s = energy_spectrum<2>(pc, 10 * mev, 200 * mev, 19);
  Real total = 0;
  for (Real v : s.counts) { total += v; }
  EXPECT_NEAR(total, 6.0, 1e-9); // the cold particle is excluded
  // 50/51 MeV land in the same bin (bin width 10 MeV).
  const int bin_50 = static_cast<int>((50 * mev - s.e_min) / s.bin_width());
  EXPECT_NEAR(s.counts[bin_50], 5.0, 1e-9);
}

TEST(Spectrum, AnalyzeBeamPeakAndSpread) {
  // Synthetic Gaussian line: peak at 100 (arb. units), sigma 5.
  Spectrum s;
  s.e_min = 0;
  s.e_max = 200;
  s.counts.assign(200, 0.0);
  for (int b = 0; b < 200; ++b) {
    const Real e = s.bin_center(b);
    s.counts[b] = std::exp(-(e - 100) * (e - 100) / (2 * 25.0));
  }
  const auto q = analyze_beam(s, 1.0);
  EXPECT_NEAR(q.peak_energy, 100.0, 1.0);
  // FWHM of a Gaussian = 2.355 sigma = 11.8 -> spread ~ 11.8%.
  EXPECT_NEAR(q.energy_spread, 0.118, 0.02);
}

TEST(Spectrum, ChargeAboveThreshold) {
  const auto geom = make_geom();
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>(geom.domain()));
  const Real mev = 1e6 * q_e;
  pc.add_particle(geom, {1e-7, 1e-7}, {u_of_energy(5 * mev), 0, 0}, 1.0);
  pc.add_particle(geom, {2e-7, 1e-7}, {u_of_energy(20 * mev), 0, 0}, 4.0);
  EXPECT_NEAR(charge_above<2>(pc, 10 * mev), 4.0 * q_e, 1e-25);
  EXPECT_NEAR(charge_above<2>(pc, 1 * mev), 5.0 * q_e, 1e-25);
}

TEST(CsvWriter, AddRowRejectsWidthMismatch) {
  CsvSeries s({"a", "b", "c"});
  EXPECT_THROW(s.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(s.add_row({1.0, 2.0, 3.0, 4.0}), std::invalid_argument);
  EXPECT_NO_THROW(s.add_row({1.0, 2.0, 3.0}));
  EXPECT_EQ(s.num_rows(), 1u);
}

TEST(CsvWriter, SeriesRoundTrip) {
  CsvSeries s({"step", "energy"});
  s.add_row({0, 1.5});
  s.add_row({1, 2.5});
  const std::string path = "test_series_tmp.csv";
  ASSERT_TRUE(s.write(path));
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "step,energy");
  std::getline(is, line);
  EXPECT_EQ(line, "0,1.5");
  std::getline(is, line);
  EXPECT_EQ(line, "1,2.5");
  is.close();
  std::remove(path.c_str());
}

TEST(CsvWriter, Field2D) {
  mrpic::MultiFab<2> mf(
      mrpic::BoxArray<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(1, 1))), 1, 0);
  mf.fab(0)(mrpic::IntVect2(1, 0), 0) = 42.0;
  const std::string path = "test_field_tmp.csv";
  ASSERT_TRUE(write_field_2d(path, mf, 0));
  std::ifstream is(path);
  std::string all((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("1,0,42"), std::string::npos);
  is.close();
  std::remove(path.c_str());
}

} // namespace
} // namespace mrpic::diag
