#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/diag/phase_space.hpp"

namespace mrpic::diag {
namespace {

using namespace mrpic::constants;

mrpic::Geometry<2> make_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(15, 15)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(16e-6, 16e-6), {});
}

particles::ParticleContainer<2> cloud() {
  const auto geom = make_geom();
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>(geom.domain()));
  pc.add_particle(geom, {2e-6, 8e-6}, {1e7, 0, 0}, 2.0);
  pc.add_particle(geom, {2e-6, 8e-6}, {3e7, 0, 0}, 1.0);
  pc.add_particle(geom, {14e-6, 8e-6}, {-1e7, 2e7, 5e6}, 4.0);
  return pc;
}

TEST(PhaseSpace, BinningXUx) {
  PhaseSpaceConfig cfg;
  cfg.ax = Axis::X0;
  cfg.ay = Axis::Ux;
  cfg.a_min = 0;
  cfg.a_max = 16e-6;
  cfg.b_min = -4e7;
  cfg.b_max = 4e7;
  cfg.na = 8;
  cfg.nb = 8;
  PhaseSpace ps(cfg);
  ps.accumulate(cloud());
  EXPECT_DOUBLE_EQ(ps.total(), 7.0);
  // x = 2e-6 -> bin 1 of 8; ux = 1e7 -> bin (1e7+4e7)/1e7 = 5.
  EXPECT_DOUBLE_EQ(ps.at(1, 5), 2.0);
  // ux = 3e7 -> bin 7.
  EXPECT_DOUBLE_EQ(ps.at(1, 7), 1.0);
  // x = 14e-6 -> bin 7; ux = -1e7 -> bin 3.
  EXPECT_DOUBLE_EQ(ps.at(7, 3), 4.0);
  ps.reset();
  EXPECT_DOUBLE_EQ(ps.total(), 0.0);
}

TEST(PhaseSpace, OutOfRangeDropped) {
  PhaseSpaceConfig cfg;
  cfg.ax = Axis::X0;
  cfg.ay = Axis::Uy;
  cfg.a_min = 0;
  cfg.a_max = 4e-6; // only the first two particles' x fits
  cfg.b_min = -1e6;
  cfg.b_max = 1e6; // uy = 0 only
  PhaseSpace ps(cfg);
  ps.accumulate(cloud());
  EXPECT_DOUBLE_EQ(ps.total(), 3.0); // third particle out of both ranges
}

TEST(PhaseSpace, EnergyAxis) {
  PhaseSpaceConfig cfg;
  cfg.ax = Axis::X0;
  cfg.ay = Axis::Energy;
  cfg.a_min = 0;
  cfg.a_max = 16e-6;
  // Nearly non-relativistic energies: E = (gamma-1) m c^2, a hair below
  // m u^2 / 2 for proper velocity u.
  const Real e1 = 0.5 * m_e * 1e7 * 1e7;
  cfg.b_min = 0;
  cfg.b_max = 4 * e1;
  cfg.nb = 4;
  cfg.na = 4;
  PhaseSpace ps(cfg);
  ps.accumulate(cloud());
  // Particle 1 (u=1e7, w=2): E = 0.9997 e1 -> bin 0 (just below the edge).
  EXPECT_DOUBLE_EQ(ps.at(0, 0), 2.0);
  // Particles 2 and 3 (u=3e7 -> ~9 e1; |u|^2=5.25e14 -> ~5.2 e1) exceed
  // b_max = 4 e1 and are dropped.
  EXPECT_DOUBLE_EQ(ps.total(), 2.0);
}

TEST(PhaseSpace, AccumulatesAcrossContainers) {
  PhaseSpaceConfig cfg;
  cfg.ax = Axis::X0;
  cfg.ay = Axis::Ux;
  cfg.a_min = 0;
  cfg.a_max = 16e-6;
  cfg.b_min = -4e7;
  cfg.b_max = 4e7;
  PhaseSpace ps(cfg);
  ps.accumulate(cloud());
  ps.accumulate(cloud()); // e.g. level-0 + patch containers
  EXPECT_DOUBLE_EQ(ps.total(), 14.0);
}

TEST(PhaseSpace, CsvOutput) {
  PhaseSpaceConfig cfg;
  cfg.na = 2;
  cfg.nb = 2;
  cfg.a_max = 16e-6;
  cfg.b_min = -4e7;
  cfg.b_max = 4e7;
  cfg.ax = Axis::X0;
  cfg.ay = Axis::Ux;
  PhaseSpace ps(cfg);
  ps.accumulate(cloud());
  const std::string path = "phase_space_tmp.csv";
  ASSERT_TRUE(ps.write(path));
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "a,b,weight");
  int rows = 0;
  std::string line;
  while (std::getline(is, line)) { ++rows; }
  EXPECT_EQ(rows, 4);
  is.close();
  std::remove(path.c_str());
}

} // namespace
} // namespace mrpic::diag
