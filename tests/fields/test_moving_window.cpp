#include <gtest/gtest.h>

#include <cmath>

#include "src/fields/moving_window.hpp"

namespace mrpic::fields {
namespace {

using mrpic::constants::c;

FieldSet<2> make_fields() {
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(63, 31)), mrpic::RealVect2(0, 0),
      mrpic::RealVect2(64e-7, 32e-7), {false, false});
  return FieldSet<2>(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 32));
}

TEST(MovingWindow, InactiveBeforeStartTime) {
  auto f = make_fields();
  MovingWindow<2> w(0, c, /*start_time=*/1e-12);
  EXPECT_FALSE(w.active(0.0));
  EXPECT_TRUE(w.active(1e-12));
  EXPECT_EQ(w.advance(0.0, 1e-15, f), 0);
  EXPECT_DOUBLE_EQ(f.geom().prob_lo()[0], 0.0);
}

TEST(MovingWindow, AccumulatesFractionalShifts) {
  auto f = make_fields();
  MovingWindow<2> w(0, c);
  const Real dx = f.geom().cell_size(0);
  const Real dt = 0.4 * dx / c; // 0.4 cells per step
  int total = 0;
  for (int s = 0; s < 10; ++s) { total += w.advance(s * dt, dt, f); }
  // 10 x 0.4 = 4 cells up to floating-point rounding of the accumulator.
  EXPECT_GE(total, 3);
  EXPECT_LE(total, 4);
  EXPECT_NEAR(f.geom().prob_lo()[0], total * dx, 1e-20);
}

TEST(MovingWindow, FieldDataTracksPhysicalPosition) {
  auto f = make_fields();
  const auto& geom = f.geom();
  const Real dx = geom.cell_size(0);
  // Mark a feature at physical x = 20 dx (index 20).
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    const auto& vb = f.E().valid_box(m);
    if (vb.contains(mrpic::IntVect2(20, 8))) {
      f.E().fab(m)(mrpic::IntVect2(20, 8), 2) = 7.0;
    }
  }
  f.E().fill_boundary(geom);
  MovingWindow<2> w(0, c);
  const Real dt = dx / c; // exactly one cell per step
  w.advance(0.0, dt, f);
  // The feature is a physical object: after the window moved one cell, it
  // lives at index 19.
  bool found = false;
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    const auto& vb = f.E().valid_box(m);
    if (vb.contains(mrpic::IntVect2(19, 8))) {
      EXPECT_DOUBLE_EQ(f.E().fab(m)(mrpic::IntVect2(19, 8), 2), 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Its physical position is unchanged.
  EXPECT_DOUBLE_EQ(f.geom().node_pos(19, 0), 20 * dx);
}

TEST(MovingWindow, SlowerWindowSpeed) {
  auto f = make_fields();
  MovingWindow<2> w(0, 0.5 * c);
  const Real dx = f.geom().cell_size(0);
  const Real dt = dx / c;
  int total = 0;
  for (int s = 0; s < 8; ++s) { total += w.advance(s * dt, dt, f); }
  EXPECT_EQ(total, 4);
}

} // namespace
} // namespace mrpic::fields
