#include <gtest/gtest.h>

#include <cmath>

#include "src/fields/fdtd.hpp"

namespace mrpic::fields {
namespace {

using mrpic::constants::c;

// Periodic vacuum box, 2D.
FieldSet<2> vacuum_2d(int n, int boxsize) {
  const mrpic::Geometry<2> geom(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1)),
                                mrpic::RealVect2(0, 0), mrpic::RealVect2(1e-5, 1e-5),
                                {true, true});
  return FieldSet<2>(geom, mrpic::BoxArray<2>::decompose(geom.domain(), boxsize));
}

TEST(CflDt, MatchesAnalyticFormula) {
  const mrpic::Geometry<2> geom(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(99, 99)),
                                mrpic::RealVect2(0, 0), mrpic::RealVect2(1.0, 2.0), {});
  const Real dx = 0.01, dy = 0.02;
  const Real expected = 0.98 / (c * std::sqrt(1 / (dx * dx) + 1 / (dy * dy)));
  EXPECT_NEAR(cfl_dt(geom, 0.98), expected, 1e-18);
  // 3D is stricter than 2D at the same resolution.
  const mrpic::Geometry<3> g3(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(99, 99, 99)),
      mrpic::RealVect3(0, 0, 0), mrpic::RealVect3(1.0, 1.0, 1.0), {});
  const mrpic::Geometry<2> g2(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(99, 99)),
                              mrpic::RealVect2(0, 0), mrpic::RealVect2(1.0, 1.0), {});
  EXPECT_LT(cfl_dt(g3), cfl_dt(g2));
}

TEST(FDTD, UniformFieldIsStatic) {
  auto f = vacuum_2d(32, 16);
  f.E().set_val(5.0, 2); // uniform Ez
  f.B().set_val(1.0, 0); // uniform Bx
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f.geom());
  for (int s = 0; s < 20; ++s) {
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
    f.fill_boundary();
    solver.evolve_e(f, dt);
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
  }
  EXPECT_NEAR(f.E().max_abs(2), 5.0, 1e-9);
  EXPECT_NEAR(f.B().max_abs(0), 1.0, 1e-9);
  EXPECT_NEAR(f.E().max_abs(0), 0.0, 1e-9);
}

TEST(FDTD, VacuumEnergyConserved) {
  auto f = vacuum_2d(64, 32);
  const auto& geom = f.geom();
  // Gaussian Ez/By pulse (plane wave along x).
  const Real x0 = 0.5e-5, sigma = 0.08e-5;
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    auto e = f.E().array(m);
    auto b = f.B().array(m);
    const auto& vb = f.E().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        const Real xn = geom.node_pos(i, 0);
        const Real xh = xn + 0.5 * geom.cell_size(0);
        e(i, j, 0, 2) = std::exp(-(xn - x0) * (xn - x0) / (sigma * sigma));
        b(i, j, 0, 1) = -std::exp(-(xh - x0) * (xh - x0) / (sigma * sigma)) / c;
      }
    }
  }
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f.geom());
  f.fill_boundary();
  const Real e0 = f.field_energy();
  for (int s = 0; s < 300; ++s) {
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
    f.fill_boundary();
    solver.evolve_e(f, dt);
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
  }
  EXPECT_NEAR(f.field_energy() / e0, 1.0, 1e-3);
}

TEST(FDTD, PlaneWavePropagatesAtLightSpeed) {
  auto f = vacuum_2d(128, 64);
  const auto& geom = f.geom();
  const Real x0 = 0.25e-5, sigma = 0.05e-5;
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    auto e = f.E().array(m);
    auto b = f.B().array(m);
    const auto& vb = f.E().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        const Real xn = geom.node_pos(i, 0);
        const Real xh = xn + 0.5 * geom.cell_size(0);
        e(i, j, 0, 2) = std::exp(-(xn - x0) * (xn - x0) / (sigma * sigma));
        b(i, j, 0, 1) = -std::exp(-(xh - x0) * (xh - x0) / (sigma * sigma)) / c;
      }
    }
  }
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f.geom());
  const int nsteps = 120;
  for (int s = 0; s < nsteps; ++s) {
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
    f.fill_boundary();
    solver.evolve_e(f, dt);
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
  }
  // Locate the pulse peak along a j-row.
  Real best_x = -1, best_v = 0;
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    const auto e = f.E().const_array(m);
    const auto& vb = f.E().valid_box(m);
    if (5 < vb.lo(1) || 5 > vb.hi(1)) { continue; }
    for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
      if (std::abs(e(i, 5, 0, 2)) > best_v) {
        best_v = std::abs(e(i, 5, 0, 2));
        best_x = geom.node_pos(i, 0);
      }
    }
  }
  const Real expected_x = x0 + c * nsteps * dt;
  EXPECT_NEAR(best_x, expected_x, 2.5 * geom.cell_size(0));
  EXPECT_GT(best_v, 0.8); // pulse amplitude roughly preserved
}

TEST(FDTD, DivBRemainsZero) {
  auto f = vacuum_2d(48, 24);
  const auto& geom = f.geom();
  // Random-ish smooth Ez only; B starts identically zero -> div B = 0 and
  // the Yee update preserves it to round-off.
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    auto e = f.E().array(m);
    const auto& vb = f.E().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        e(i, j, 0, 2) = std::sin(2 * mrpic::constants::pi * i / 48.0) *
                        std::cos(4 * mrpic::constants::pi * j / 48.0);
      }
    }
  }
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f.geom());
  for (int s = 0; s < 50; ++s) {
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
    f.fill_boundary();
    solver.evolve_e(f, dt);
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
  }
  f.fill_boundary();
  // The natural Yee divergence of B lives at cell centers (i+1/2, j+1/2):
  // forward differences of Bx (stag (0,1)) and By (stag (1,0)).
  Real worst = 0;
  const Real idx = 1 / geom.cell_size(0), idy = 1 / geom.cell_size(1);
  for (int m = 0; m < f.B().num_fabs(); ++m) {
    const auto b = f.B().const_array(m);
    const auto& vb = f.B().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        const Real div = (b(i + 1, j, 0, 0) - b(i, j, 0, 0)) * idx +
                         (b(i, j + 1, 0, 1) - b(i, j, 0, 1)) * idy;
        worst = std::max(worst, std::abs(div));
      }
    }
  }
  const Real scale = std::max(f.B().max_abs(0), f.B().max_abs(1)) * idx;
  EXPECT_LT(worst, 1e-10 * std::max(scale, Real(1)));
}

TEST(FDTD, MultiBoxMatchesSingleBox) {
  // The same initial data evolved on 1 box vs 2x2 boxes must agree exactly:
  // domain decomposition is invisible to the physics.
  auto f1 = vacuum_2d(32, 32);
  auto f4 = vacuum_2d(32, 16);
  auto init = [&](FieldSet<2>& f) {
    for (int m = 0; m < f.E().num_fabs(); ++m) {
      auto e = f.E().array(m);
      const auto& vb = f.E().valid_box(m);
      for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
        for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
          e(i, j, 0, 2) = std::sin(2 * mrpic::constants::pi * (i + 2 * j) / 32.0);
        }
      }
    }
  };
  init(f1);
  init(f4);
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f1.geom());
  for (int s = 0; s < 25; ++s) {
    for (FieldSet<2>* f : {&f1, &f4}) {
      f->fill_boundary();
      solver.evolve_b(*f, dt / 2);
      f->fill_boundary();
      solver.evolve_e(*f, dt);
      f->fill_boundary();
      solver.evolve_b(*f, dt / 2);
    }
  }
  // Compare every valid cell of f4 against f1.
  for (int m = 0; m < f4.E().num_fabs(); ++m) {
    const auto e4 = f4.E().const_array(m);
    const auto e1 = f1.E().const_array(0);
    const auto b4 = f4.B().const_array(m);
    const auto b1 = f1.B().const_array(0);
    const auto& vb = f4.E().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        for (int n = 0; n < 3; ++n) {
          EXPECT_DOUBLE_EQ(e4(i, j, 0, n), e1(i, j, 0, n));
          EXPECT_DOUBLE_EQ(b4(i, j, 0, n), b1(i, j, 0, n));
        }
      }
    }
  }
}

TEST(FDTD, VacuumEnergyConserved3D) {
  const mrpic::Geometry<3> geom(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(23, 23, 23)),
      mrpic::RealVect3(0, 0, 0), mrpic::RealVect3(1e-5, 1e-5, 1e-5), {true, true, true});
  FieldSet<3> f(geom, mrpic::BoxArray<3>::decompose(geom.domain(), 12));
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    auto e = f.E().array(m);
    const auto& vb = f.E().valid_box(m);
    for (int k = vb.lo(2); k <= vb.hi(2); ++k) {
      for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
        for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
          e(i, j, k, 2) = std::sin(2 * mrpic::constants::pi * i / 24.0);
        }
      }
    }
  }
  FDTDSolver<3> solver;
  const Real dt = cfl_dt(geom);
  f.fill_boundary();
  const Real e0 = f.field_energy();
  for (int s = 0; s < 100; ++s) {
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
    f.fill_boundary();
    solver.evolve_e(f, dt);
    f.fill_boundary();
    solver.evolve_b(f, dt / 2);
  }
  EXPECT_NEAR(f.field_energy() / e0, 1.0, 5e-3);
}

} // namespace
} // namespace mrpic::fields
