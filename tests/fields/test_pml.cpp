#include <gtest/gtest.h>

#include <cmath>

#include "src/fields/fdtd.hpp"
#include "src/fields/pml.hpp"

namespace mrpic::fields {
namespace {

using mrpic::constants::c;

FieldSet<2> open_box_2d(int n) {
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1)),
      mrpic::RealVect2(0, 0), mrpic::RealVect2(1e-5, 1e-5), {false, false});
  return FieldSet<2>(geom, mrpic::BoxArray<2>::decompose(geom.domain(), n / 2));
}

void pulse_init(FieldSet<2>& f, Real x0, Real y0, Real sigma) {
  const auto& geom = f.geom();
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    auto e = f.E().array(m);
    const auto& vb = f.E().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        const Real x = geom.node_pos(i, 0), y = geom.node_pos(j, 1);
        const Real r2 = (x - x0) * (x - x0) + (y - y0) * (y - y0);
        e(i, j, 0, 2) = std::exp(-r2 / (sigma * sigma));
      }
    }
  }
}

void run_with_pml(FieldSet<2>& f, Pml<2>& pml, FDTDSolver<2>& solver, Real dt, int nsteps) {
  auto exchange = [&] {
    f.fill_boundary();
    pml.exchange_from_interior(f);
    pml.fill_boundary();
    pml.copy_to_interior(f);
  };
  for (int s = 0; s < nsteps; ++s) {
    exchange();
    solver.evolve_b(f, dt / 2);
    pml.evolve_b(dt / 2);
    exchange();
    solver.evolve_e(f, dt);
    pml.evolve_e(dt);
    exchange();
    solver.evolve_b(f, dt / 2);
    pml.evolve_b(dt / 2);
  }
}

TEST(Pml, RingGeometry) {
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)), mrpic::RealVect2(0, 0),
      mrpic::RealVect2(1, 1), {false, false});
  PmlConfig cfg;
  cfg.npml = 8;
  Pml<2> pml(geom, geom.domain(), {true, true}, cfg);
  // 3x3 segments minus the interior = 8 ring boxes.
  EXPECT_EQ(pml.box_array().size(), 8);
  // Ring boxes tile grown(domain, npml) \ domain exactly.
  std::int64_t ring_cells = 0;
  for (const auto& b : pml.box_array().boxes()) {
    EXPECT_TRUE(geom.domain().grown(8).contains(b));
    EXPECT_FALSE(geom.domain().intersects(b));
    ring_cells += b.num_cells();
  }
  EXPECT_EQ(ring_cells, geom.domain().grown(8).num_cells() - geom.domain().num_cells());
}

TEST(Pml, PeriodicDirectionGetsNoLayer) {
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)), mrpic::RealVect2(0, 0),
      mrpic::RealVect2(1, 1), {false, true});
  Pml<2> pml(geom, geom.domain(), {true, false});
  EXPECT_EQ(pml.box_array().size(), 2); // only x skirts
}

TEST(Pml, SigmaProfile) {
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)), mrpic::RealVect2(0, 0),
      mrpic::RealVect2(1e-5, 1e-5), {false, false});
  PmlConfig cfg;
  cfg.npml = 10;
  Pml<2> pml(geom, geom.domain(), {true, true}, cfg);
  EXPECT_EQ(pml.sigma(0, 16.0), 0.0);     // interior
  EXPECT_EQ(pml.sigma(0, 0.0), 0.0);      // at the edge
  EXPECT_GT(pml.sigma(0, -5.0), 0.0);     // inside the layer
  EXPECT_GT(pml.sigma(0, -10.0), pml.sigma(0, -5.0)); // graded
  EXPECT_GT(pml.sigma(0, 42.0), 0.0);     // high-side layer (edge at 32)
  // Cubic grading: sigma(depth d) ~ d^3.
  EXPECT_NEAR(pml.sigma(0, -10.0) / pml.sigma(0, -5.0), 8.0, 1e-9);
}

TEST(Pml, AbsorbsOutgoingPulse) {
  auto f = open_box_2d(64);
  PmlConfig cfg;
  cfg.npml = 12;
  Pml<2> pml(f.geom(), f.geom().domain(), {true, true}, cfg);
  pulse_init(f, 0.5e-5, 0.5e-5, 0.08e-5);
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f.geom());
  f.fill_boundary();
  const Real e0 = f.field_energy();
  ASSERT_GT(e0, 0.0);
  // Run long enough for the pulse to cross the domain and be absorbed
  // (domain is 1e-5 m, light crosses it in ~64/0.98/sqrt(2) ~ 92 steps).
  run_with_pml(f, pml, solver, dt, 400);
  const Real e1 = f.field_energy();
  EXPECT_LT(e1 / e0, 0.02) << "PML should absorb >98% of the pulse energy";
}

TEST(Pml, OutperformsReflectingBoundary) {
  // Same pulse, no PML: the PEC-like boundary reflects everything and the
  // energy stays in the box. Demonstrates the PML actually does the work.
  auto f_pec = open_box_2d(64);
  pulse_init(f_pec, 0.5e-5, 0.5e-5, 0.08e-5);
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f_pec.geom());
  f_pec.fill_boundary();
  const Real e0 = f_pec.field_energy();
  for (int s = 0; s < 400; ++s) {
    f_pec.fill_boundary();
    solver.evolve_b(f_pec, dt / 2);
    f_pec.fill_boundary();
    solver.evolve_e(f_pec, dt);
    f_pec.fill_boundary();
    solver.evolve_b(f_pec, dt / 2);
  }
  EXPECT_GT(f_pec.field_energy() / e0, 0.5) << "reflecting box keeps the energy";
}

class PmlWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PmlWidthSweep, WiderLayersAbsorbBetter) {
  const int npml = GetParam();
  auto f = open_box_2d(48);
  PmlConfig cfg;
  cfg.npml = npml;
  Pml<2> pml(f.geom(), f.geom().domain(), {true, true}, cfg);
  pulse_init(f, 0.5e-5, 0.5e-5, 0.08e-5);
  FDTDSolver<2> solver;
  const Real dt = cfl_dt(f.geom());
  f.fill_boundary();
  const Real e0 = f.field_energy();
  run_with_pml(f, pml, solver, dt, 300);
  const Real residual = f.field_energy() / e0;
  // Even 6 cells should absorb the bulk; 16 should be excellent.
  EXPECT_LT(residual, npml >= 12 ? 0.02 : 0.10) << "npml=" << npml;
}

INSTANTIATE_TEST_SUITE_P(Widths, PmlWidthSweep, ::testing::Values(6, 8, 12, 16));

TEST(Pml, Absorbs3DPulse) {
  const mrpic::Geometry<3> geom(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(31, 31, 31)),
      mrpic::RealVect3(0, 0, 0), mrpic::RealVect3(1e-5, 1e-5, 1e-5),
      {false, false, false});
  FieldSet<3> f(geom, mrpic::BoxArray<3>(geom.domain()));
  PmlConfig cfg;
  cfg.npml = 8;
  Pml<3> pml(geom, geom.domain(), {true, true, true}, cfg);
  // Divergence-free pulse: Ez independent of z (div E = dEz/dz = 0), so the
  // whole blob is radiative — a fully 3D charge-like Ez blob would leave a
  // legitimate electrostatic remnant that no absorber can remove.
  for (int m = 0; m < f.E().num_fabs(); ++m) {
    auto e = f.E().array(m);
    const auto& vb = f.E().valid_box(m);
    for (int k = vb.lo(2); k <= vb.hi(2); ++k) {
      for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
        for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
          const Real r2 = (i - 16.0) * (i - 16.0) + (j - 16.0) * (j - 16.0);
          e(i, j, k, 2) = std::exp(-r2 / 16.0);
        }
      }
    }
  }
  FDTDSolver<3> solver;
  const Real dt = cfl_dt(geom);
  f.fill_boundary();
  const Real e0 = f.field_energy();
  auto exchange = [&] {
    f.fill_boundary();
    pml.exchange_from_interior(f);
    pml.fill_boundary();
    pml.copy_to_interior(f);
  };
  for (int s = 0; s < 200; ++s) {
    exchange();
    solver.evolve_b(f, dt / 2);
    pml.evolve_b(dt / 2);
    exchange();
    solver.evolve_e(f, dt);
    pml.evolve_e(dt);
    exchange();
    solver.evolve_b(f, dt / 2);
    pml.evolve_b(dt / 2);
  }
  // The z-uniform pulse hits the z-layers at grazing incidence, where any
  // PML absorbs more slowly; 8 cells still soak up >90% in this window.
  EXPECT_LT(f.field_energy() / e0, 0.10);
}

} // namespace
} // namespace mrpic::fields
