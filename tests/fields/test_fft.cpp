#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/fields/fft.hpp"

namespace mrpic::fields {
namespace {

TEST(Fft, PowerOfTwoPredicate) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_FALSE(is_power_of_two(-4));
}

TEST(Fft, NonPowerOfTwoLengthThrows) {
  std::vector<Complex> a(48, Complex(0));
  EXPECT_THROW(fft_1d(a.data(), 48, false), std::invalid_argument);
  EXPECT_THROW(fft_1d(a.data(), 0, false), std::invalid_argument);
  EXPECT_THROW(fft_1d(a.data(), -4, true), std::invalid_argument);
  try {
    fft_1d(a.data(), 48, false);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("48"), std::string::npos);
  }
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  std::vector<Complex> a(16, Complex(0));
  a[0] = Complex(1);
  fft_1d(a.data(), 16, false);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleModeLandsInSingleBin) {
  const int n = 32;
  std::vector<Complex> a(n);
  for (int i = 0; i < n; ++i) {
    a[i] = Complex(std::cos(2 * constants::pi * 3 * i / n), 0);
  }
  fft_1d(a.data(), n, false);
  // cos(2 pi 3 x / L): power split between bins 3 and n-3, amplitude n/2.
  EXPECT_NEAR(std::abs(a[3]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(a[n - 3]), n / 2.0, 1e-9);
  for (int m = 0; m < n; ++m) {
    if (m != 3 && m != n - 3) { EXPECT_NEAR(std::abs(a[m]), 0.0, 1e-9) << m; }
  }
}

TEST(Fft, RoundTrip1D) {
  const int n = 64;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<Complex> a(n), orig(n);
  for (auto& v : a) { v = Complex(dist(rng), dist(rng)); }
  orig = a;
  fft_1d(a.data(), n, false);
  fft_1d(a.data(), n, true);
  fft_normalize(a.data(), n, n);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(a[i].real(), orig[i].real(), 1e-12);
    EXPECT_NEAR(a[i].imag(), orig[i].imag(), 1e-12);
  }
}

TEST(Fft, ParsevalEnergyPreserved) {
  const int n = 128;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<Complex> a(n);
  double time_energy = 0;
  for (auto& v : a) {
    v = Complex(dist(rng), 0);
    time_energy += std::norm(v);
  }
  fft_1d(a.data(), n, false);
  double freq_energy = 0;
  for (const auto& v : a) { freq_energy += std::norm(v); }
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * time_energy);
}

TEST(Fft, RoundTrip2D) {
  const int nx = 16, ny = 8;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<Complex> a(nx * ny), orig;
  for (auto& v : a) { v = Complex(dist(rng), dist(rng)); }
  orig = a;
  fft_2d(a.data(), nx, ny, false);
  fft_2d(a.data(), nx, ny, true);
  fft_normalize(a.data(), nx * ny, nx * ny);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - orig[i]), 0.0, 1e-11);
  }
}

TEST(Fft, RoundTrip3D) {
  const int nx = 8, ny = 4, nz = 16;
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<Complex> a(nx * ny * nz), orig;
  for (auto& v : a) { v = Complex(dist(rng), dist(rng)); }
  orig = a;
  fft_3d(a.data(), nx, ny, nz, false);
  fft_3d(a.data(), nx, ny, nz, true);
  fft_normalize(a.data(), nx * ny * nz, nx * ny * nz);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - orig[i]), 0.0, 1e-11);
  }
}

TEST(Fft, SeparableModeIn2D) {
  const int nx = 16, ny = 16;
  std::vector<Complex> a(nx * ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      a[i + j * nx] = std::exp(Complex(0, 2 * constants::pi * (2.0 * i / nx + 5.0 * j / ny)));
    }
  }
  fft_2d(a.data(), nx, ny, false);
  // exp(i(k2 x + k5 y)) -> single bin (2, 5) with amplitude nx*ny.
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double expect = (i == 2 && j == 5) ? nx * ny : 0.0;
      EXPECT_NEAR(std::abs(a[i + j * nx]), expect, 1e-8) << i << "," << j;
    }
  }
}

TEST(Fft, WavenumberFolding) {
  const Real dx = 0.5;
  const int n = 8;
  EXPECT_DOUBLE_EQ(fft_wavenumber(0, n, dx), 0.0);
  EXPECT_DOUBLE_EQ(fft_wavenumber(1, n, dx), 2 * constants::pi / (n * dx));
  // Above n/2 the mode is negative frequency.
  EXPECT_DOUBLE_EQ(fft_wavenumber(n - 1, n, dx), -2 * constants::pi / (n * dx));
  EXPECT_DOUBLE_EQ(fft_wavenumber(n / 2, n, dx), 2 * constants::pi * (n / 2) / (n * dx));
}

} // namespace
} // namespace mrpic::fields
