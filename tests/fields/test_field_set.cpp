#include <gtest/gtest.h>

#include "src/fields/field_set.hpp"

namespace mrpic::fields {
namespace {

using namespace mrpic::constants;

FieldSet<2> make_fields() {
  const mrpic::Geometry<2> geom(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(15, 15)),
                                mrpic::RealVect2(0, 0), mrpic::RealVect2(1.6e-6, 1.6e-6),
                                {true, true});
  return FieldSet<2>(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 8));
}

TEST(FieldSet, EnergyOfUniformField) {
  auto f = make_fields();
  f.E().set_val(2.0, 2); // Ez = 2 everywhere
  // U = eps0/2 * E^2 * V, V = (1.6e-6)^2 * 1 (unit z-depth).
  const Real v = 1.6e-6 * 1.6e-6;
  EXPECT_NEAR(f.field_energy(), 0.5 * eps0 * 4.0 * v, 1e-30);

  f.E().set_val(0.0);
  f.B().set_val(3.0, 0);
  EXPECT_NEAR(f.field_energy(), 0.5 / mu0 * 9.0 * v, 1e-12 * (0.5 / mu0 * 9.0 * v));
}

TEST(FieldSet, ZeroCurrentClearsAllComponents) {
  auto f = make_fields();
  f.J().set_val(7.0);
  f.zero_current();
  for (int cc = 0; cc < 3; ++cc) { EXPECT_EQ(f.J().max_abs(cc), 0.0); }
}

TEST(FieldSet, FillBoundarySyncsEandB) {
  auto f = make_fields();
  // Stamp a value at the edge of fab 0's valid region; fab 1's ghost must
  // see it after fill_boundary.
  f.E().fab(0)(mrpic::IntVect2(7, 3), 1) = 5.5;
  f.B().fab(0)(mrpic::IntVect2(7, 3), 2) = -1.5;
  f.fill_boundary();
  int neighbor = -1;
  ASSERT_TRUE(f.box_array().contains(mrpic::IntVect2(8, 3), &neighbor));
  EXPECT_DOUBLE_EQ(f.E().fab(neighbor)(mrpic::IntVect2(7, 3), 1), 5.5);
  EXPECT_DOUBLE_EQ(f.B().fab(neighbor)(mrpic::IntVect2(7, 3), 2), -1.5);
}

TEST(FieldSet, GeometryAccessors) {
  auto f = make_fields();
  EXPECT_EQ(f.num_ghost(), mrpic::default_num_ghost);
  EXPECT_EQ(f.box_array().size(), 4);
  EXPECT_DOUBLE_EQ(f.geom().cell_size(0), 0.1e-6);
}

TEST(YeeStaggering, MatchesStandardLattice) {
  // 3D: Ex face-staggered in x only; Bx edge-staggered in y,z.
  EXPECT_EQ(e_stag<3>(0), mrpic::IntVect3(1, 0, 0));
  EXPECT_EQ(e_stag<3>(1), mrpic::IntVect3(0, 1, 0));
  EXPECT_EQ(e_stag<3>(2), mrpic::IntVect3(0, 0, 1));
  EXPECT_EQ(b_stag<3>(0), mrpic::IntVect3(0, 1, 1));
  EXPECT_EQ(b_stag<3>(1), mrpic::IntVect3(1, 0, 1));
  EXPECT_EQ(b_stag<3>(2), mrpic::IntVect3(1, 1, 0));
  // J is staggered like E.
  for (int cc = 0; cc < 3; ++cc) { EXPECT_EQ(j_stag<3>(cc), e_stag<3>(cc)); }
  // 2D drops the z entry.
  EXPECT_EQ(b_stag<2>(2), mrpic::IntVect2(1, 1));
  EXPECT_EQ(e_stag<2>(2), mrpic::IntVect2(0, 0));
}

} // namespace
} // namespace mrpic::fields
