#include <gtest/gtest.h>

#include <cmath>

#include "src/fields/fdtd.hpp"
#include "src/fields/psatd.hpp"

namespace mrpic::fields {
namespace {

using mrpic::constants::c;
using mrpic::constants::eps0;
using mrpic::constants::pi;

FieldSet<2> periodic_2d(int n) {
  const mrpic::Geometry<2> geom(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1)),
                                mrpic::RealVect2(0, 0), mrpic::RealVect2(1e-5, 1e-5),
                                {true, true});
  return FieldSet<2>(geom, mrpic::BoxArray<2>(geom.domain()));
}

// Sinusoidal plane wave along x: Ez = E0 sin(kx), By = -Ez/c, each sampled
// at its own Yee-staggered location (Ez nodal in x; By at i + 1/2 — the
// solver handles the staggering spectrally).
void plane_wave(FieldSet<2>& f, int mode, Real amp) {
  const auto& geom = f.geom();
  const int n = geom.domain().length(0);
  auto e = f.E().array(0);
  auto b = f.B().array(0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      e(i, j, 0, 2) = amp * std::sin(2 * pi * mode * i / n);
      b(i, j, 0, 1) = -amp * std::sin(2 * pi * mode * (i + 0.5) / n) / c;
    }
  }
}

TEST(Psatd, VacuumPlaneWaveAdvectsExactly) {
  // The PSATD headline: no dispersion, waves advance at exactly c for any
  // dt — even far above the FDTD CFL limit.
  auto f = periodic_2d(32);
  plane_wave(f, 3, 1.0);
  PsatdSolver<2> solver(f.geom());
  const Real L = 1e-5;
  // One full domain crossing in 10 steps: dt = L/(10c), CFL number ~ 3.2.
  const Real dt = L / (10 * c);
  EXPECT_GT(c * dt / f.geom().cell_size(0), 1.0) << "dt above the FDTD limit by design";
  for (int s = 0; s < 10; ++s) { solver.advance(f, dt); }
  // After one crossing of a periodic box the wave must be bit-like exact.
  const auto e = f.E().const_array(0);
  for (int i = 0; i < 32; ++i) {
    const Real phase = 2 * pi * 3 * i / 32.0;
    EXPECT_NEAR(e(i, 7, 0, 2), std::sin(phase), 1e-10) << i;
  }
}

TEST(Psatd, VacuumEnergyExactlyConserved) {
  auto f = periodic_2d(32);
  plane_wave(f, 2, 1.0);
  // Add an unrelated mode in y for good measure.
  auto e = f.E().array(0);
  for (int j = 0; j < 32; ++j) {
    for (int i = 0; i < 32; ++i) { e(i, j, 0, 0) += 0.3 * std::sin(2 * pi * 5 * j / 32.0); }
  }
  PsatdSolver<2> solver(f.geom());
  const Real e0 = f.field_energy();
  const Real dt = 0.7e-13 / 3; // arbitrary, far above CFL
  for (int s = 0; s < 57; ++s) { solver.advance(f, dt); }
  EXPECT_NEAR(f.field_energy() / e0, 1.0, 1e-10);
}

TEST(Psatd, StaticUniformFieldsUntouched) {
  auto f = periodic_2d(16);
  f.E().set_val(4.0, 2);
  f.B().set_val(-2.0, 0);
  PsatdSolver<2> solver(f.geom());
  for (int s = 0; s < 5; ++s) { solver.advance(f, 1e-14); }
  EXPECT_NEAR(f.E().fab(0)(mrpic::IntVect2(3, 3), 2), 4.0, 1e-12);
  EXPECT_NEAR(f.B().fab(0)(mrpic::IntVect2(3, 3), 0), -2.0, 1e-12);
}

TEST(Psatd, MeanCurrentDrivesMeanField) {
  // k = 0 mode: dE/dt = -J/eps0 exactly.
  auto f = periodic_2d(16);
  f.J().set_val(5.0, 2);
  PsatdSolver<2> solver(f.geom());
  const Real dt = 2e-15;
  solver.advance(f, dt);
  EXPECT_NEAR(f.E().fab(0)(mrpic::IntVect2(5, 5), 2), -5.0 * dt / eps0,
              std::abs(5.0 * dt / eps0) * 1e-12);
}

TEST(Psatd, AgreesWithFdtdAtFineResolution) {
  // On a well-resolved smooth pulse and small dt, the two solvers must
  // agree to the FDTD truncation error.
  auto f_sp = periodic_2d(64);
  auto f_fd = periodic_2d(64);
  const int n = 64;
  for (FieldSet<2>* f : {&f_sp, &f_fd}) {
    auto e = f->E().array(0);
    auto b = f->B().array(0);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) { // 32 cells per wavelength, staggered By
        e(i, j, 0, 2) = std::sin(2 * pi * 2 * i / n);
        b(i, j, 0, 1) = -std::sin(2 * pi * 2 * (i + 0.5) / n) / c;
      }
    }
  }
  PsatdSolver<2> sp(f_sp.geom());
  FDTDSolver<2> fd;
  const Real dt = cfl_dt(f_fd.geom(), 0.5);
  for (int s = 0; s < 40; ++s) {
    sp.advance(f_sp, dt);
    f_fd.fill_boundary();
    fd.evolve_b(f_fd, dt / 2);
    f_fd.fill_boundary();
    fd.evolve_e(f_fd, dt);
    f_fd.fill_boundary();
    fd.evolve_b(f_fd, dt / 2);
  }
  // Compare the RMS amplitude along a row (phase-insensitive: the sampled
  // maximum depends on where the crest sits between grid points).
  auto rms_amp = [&](FieldSet<2>& f) {
    Real s2 = 0;
    const auto e = f.E().const_array(0);
    for (int i = 0; i < n; ++i) { s2 += e(i, 5, 0, 2) * e(i, 5, 0, 2); }
    return std::sqrt(2 * s2 / n); // RMS of a unit sine is 1/sqrt(2)
  };
  EXPECT_NEAR(rms_amp(f_sp), 1.0, 1e-9); // spectral: exact amplitude
  EXPECT_NEAR(rms_amp(f_fd), 1.0, 0.05); // FDTD: truncation-level error
}

TEST(Psatd, FdtdDispersionErrorVsSpectralExactness) {
  // Quantify the paper-motivating difference: at 8 cells/wavelength a
  // wave's phase after one domain crossing is exact for PSATD and visibly
  // lags for FDTD (numerical dispersion).
  const int n = 32;
  auto f_sp = periodic_2d(n);
  auto f_fd = periodic_2d(n);
  const int mode = 4; // 8 cells per wavelength
  plane_wave(f_sp, mode, 1.0);
  plane_wave(f_fd, mode, 1.0);
  PsatdSolver<2> sp(f_sp.geom());
  FDTDSolver<2> fd;
  const Real L = 1e-5;
  const Real dt = cfl_dt(f_fd.geom(), 0.5);
  const int nsteps = static_cast<int>(L / (c * dt));
  for (int s = 0; s < nsteps; ++s) {
    sp.advance(f_sp, dt);
    f_fd.fill_boundary();
    fd.evolve_b(f_fd, dt / 2);
    f_fd.fill_boundary();
    fd.evolve_e(f_fd, dt);
    f_fd.fill_boundary();
    fd.evolve_b(f_fd, dt / 2);
  }
  // Phase of the propagating mode via its discrete Fourier amplitude,
  // against the exact expectation sin(kx - omega t).
  auto phase_error = [&](FieldSet<2>& f) {
    std::complex<Real> a(0, 0);
    const auto e = f.E().const_array(0);
    for (int i = 0; i < n; ++i) {
      a += e(i, 3, 0, 2) * std::exp(std::complex<Real>(0, -2 * pi * mode * i / n));
    }
    // sin(kx + phi) has mode amplitude ~ exp(i phi)/(2i); expected
    // phi = -omega t.
    const Real expected_phi = -2 * pi * mode * c * nsteps * dt / L;
    const std::complex<Real> expected =
        std::exp(std::complex<Real>(0, expected_phi)) / std::complex<Real>(0, 2);
    return std::arg(a / expected);
  };
  EXPECT_NEAR(phase_error(f_sp), 0.0, 1e-6); // spectral: dispersion-free
  // FDTD at 8 cells/wavelength: phase velocity ~2% low -> ~0.5 rad lag
  // after one domain crossing (the error the paper's PSATD work removes).
  EXPECT_GT(std::abs(phase_error(f_fd)), 0.1);
  EXPECT_LT(std::abs(phase_error(f_fd)), 1.5);
}

TEST(Psatd, Vacuum3DEnergyConserved) {
  const mrpic::Geometry<3> geom(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(15, 15, 15)),
      mrpic::RealVect3(0, 0, 0), mrpic::RealVect3(1e-5, 1e-5, 1e-5), {true, true, true});
  FieldSet<3> f(geom, mrpic::BoxArray<3>(geom.domain()));
  auto e = f.E().array(0);
  for (int k = 0; k < 16; ++k) {
    for (int j = 0; j < 16; ++j) {
      for (int i = 0; i < 16; ++i) {
        e(i, j, k, 2) = std::sin(2 * pi * i / 16.0) * std::cos(2 * pi * j / 16.0);
      }
    }
  }
  PsatdSolver<3> solver(geom);
  const Real e0 = f.field_energy();
  for (int s = 0; s < 25; ++s) { solver.advance(f, 3e-15); }
  EXPECT_NEAR(f.field_energy() / e0, 1.0, 1e-9);
}

} // namespace
} // namespace mrpic::fields
