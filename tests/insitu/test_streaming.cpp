// insitu streaming exporter: frame round-trip (bit-exact float32 payload),
// file rotation + ring pruning, truncated-tail tolerance, manifest schema
// validation, and the downsample / phase-space frame producers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/insitu/streaming.hpp"
#include "src/obs/json.hpp"

using namespace mrpic;
using insitu::Frame;
using insitu::FrameKind;

namespace {

Frame make_frame(std::int64_t step, std::uint32_t nx, std::uint32_t ny,
                 const std::string& name) {
  Frame f;
  f.kind = FrameKind::FieldSlice;
  f.name = name;
  f.step = step;
  f.time = 1e-15 * static_cast<double>(step);
  f.nx = nx;
  f.ny = ny;
  f.x0 = 0;
  f.x1 = 1e-5;
  f.y0 = -2e-6;
  f.y1 = 2e-6;
  f.data.resize(std::size_t(nx) * ny);
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    // Values that exercise the full float mantissa, sign and magnitude.
    f.data[i] = static_cast<float>(std::sin(0.1 * double(i) + double(step)) * 1e11);
  }
  return f;
}

void expect_frames_equal(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.nx, b.nx);
  EXPECT_EQ(a.ny, b.ny);
  EXPECT_EQ(a.x0, b.x0);
  EXPECT_EQ(a.x1, b.x1);
  EXPECT_EQ(a.y0, b.y0);
  EXPECT_EQ(a.y1, b.y1);
  ASSERT_EQ(a.data.size(), b.data.size());
  // Bit-exact: the payload is raw float32, no re-encoding allowed.
  EXPECT_EQ(0, std::memcmp(a.data.data(), b.data.data(),
                           a.data.size() * sizeof(float)));
}

void cleanup(const std::string& basename, int nfiles = 16) {
  for (int i = 0; i < nfiles; ++i) {
    char path[256];
    std::snprintf(path, sizeof(path), "%s.%03d.bin", basename.c_str(), i);
    std::remove(path);
  }
  std::remove((basename + ".manifest.json").c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(InsituStreaming, RoundTripBitExact) {
  const std::string base = "stream_test_rt";
  cleanup(base);
  std::vector<Frame> written;
  {
    insitu::StreamConfig cfg;
    cfg.basename = base;
    insitu::StreamWriter w(cfg);
    for (int s = 0; s < 3; ++s) {
      written.push_back(make_frame(s * 10, 12, 7, "Ex"));
      ASSERT_TRUE(w.write(written.back()));
    }
    EXPECT_EQ(w.frames_written(), 3);
    EXPECT_GT(w.bytes_written(), 0);
  }

  bool truncated = true;
  const auto back = insitu::read_frames(base + ".000.bin", &truncated);
  EXPECT_FALSE(truncated);
  ASSERT_EQ(back.size(), 3u);
  for (int i = 0; i < 3; ++i) { expect_frames_equal(written[i], back[i]); }

  std::vector<std::string> errors;
  const auto man = insitu::read_manifest(base + ".manifest.json", &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(man.total_frames, 3);
  ASSERT_EQ(man.files.size(), 1u);
  EXPECT_EQ(man.files[0].frames, 3);
  EXPECT_EQ(man.files[0].first_step, 0);
  EXPECT_EQ(man.files[0].last_step, 20);
  cleanup(base);
}

TEST(InsituStreaming, RotationAndRingPruning) {
  const std::string base = "stream_test_rot";
  cleanup(base);
  {
    insitu::StreamConfig cfg;
    cfg.basename = base;
    cfg.max_file_bytes = 1; // every frame exceeds the bound -> one file each
    cfg.max_files = 2;
    insitu::StreamWriter w(cfg);
    for (int s = 0; s < 4; ++s) { ASSERT_TRUE(w.write(make_frame(s, 4, 4, "Ey"))); }
    EXPECT_EQ(w.frames_written(), 4);
    EXPECT_EQ(w.files_rotated(), 4);
  }

  // Ring of 2: the first two files were pruned from disk and manifest.
  EXPECT_FALSE(std::ifstream(base + ".000.bin").good());
  EXPECT_FALSE(std::ifstream(base + ".001.bin").good());
  EXPECT_TRUE(std::ifstream(base + ".002.bin").good());
  EXPECT_TRUE(std::ifstream(base + ".003.bin").good());

  std::vector<std::string> errors;
  const auto man = insitu::read_manifest(base + ".manifest.json", &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(man.total_frames, 2);
  ASSERT_EQ(man.files.size(), 2u);
  EXPECT_EQ(man.files[0].file, base + ".002.bin");
  EXPECT_EQ(man.files[1].file, base + ".003.bin");

  const auto f2 = insitu::read_frames(base + ".002.bin");
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_EQ(f2[0].step, 2);
  cleanup(base);
}

TEST(InsituStreaming, TruncatedTailIsDroppedWithoutError) {
  const std::string base = "stream_test_trunc";
  cleanup(base);
  {
    insitu::StreamConfig cfg;
    cfg.basename = base;
    insitu::StreamWriter w(cfg);
    ASSERT_TRUE(w.write(make_frame(0, 8, 8, "Ex")));
    ASSERT_TRUE(w.write(make_frame(1, 8, 8, "Ex")));
  }
  const std::string path = base + ".000.bin";
  const std::string bytes = slurp(path);

  // Chop into the second frame's payload: a crash mid-append.
  spit(path, bytes.substr(0, bytes.size() - 37));
  bool truncated = false;
  auto frames = insitu::read_frames(path, &truncated);
  EXPECT_TRUE(truncated);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].step, 0);

  // Corrupt one payload byte of the tail frame: checksum must reject it.
  std::string corrupt = bytes;
  corrupt[corrupt.size() - 20] ^= 0x5a;
  spit(path, corrupt);
  truncated = false;
  frames = insitu::read_frames(path, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(frames.size(), 1u);

  // The intact file reads both frames cleanly.
  spit(path, bytes);
  truncated = true;
  frames = insitu::read_frames(path, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(frames.size(), 2u);
  cleanup(base);
}

TEST(InsituStreaming, ManifestSchemaValidation) {
  const std::string good = R"({
    "schema": "mrpic.insitu.stream.v1",
    "version": 1,
    "basename": "run_stream",
    "max_file_bytes": 4194304,
    "max_files": 8,
    "total_frames": 1,
    "files": [{"file": "run_stream.000.bin", "frames": 1,
               "first_step": 0, "last_step": 0, "bytes": 100}],
    "frames": [{"file": "run_stream.000.bin", "offset": 0, "kind": "field_slice",
                "name": "Ex", "step": 0, "time": 0.0, "nx": 4, "ny": 4}]
  })";
  EXPECT_TRUE(insitu::validate_manifest(obs::json::parse(good)).empty());

  // Wrong schema tag.
  const std::string bad_tag = R"({"schema": "someone.else.v9", "version": 1,
    "basename": "x", "total_frames": 0, "files": [], "frames": []})";
  EXPECT_FALSE(insitu::validate_manifest(obs::json::parse(bad_tag)).empty());

  // total_frames disagrees with the frames list.
  const std::string bad_count = R"({
    "schema": "mrpic.insitu.stream.v1", "version": 1, "basename": "x",
    "total_frames": 5, "files": [], "frames": []})";
  EXPECT_FALSE(insitu::validate_manifest(obs::json::parse(bad_count)).empty());
}

TEST(InsituStreaming, DownsampleSliceBlockAverages) {
  // 8x8 single-box field, comp 1 filled with f(i,j) = i + 10 j; factor-2
  // block averages are exact: (2I + 0.5) + 10 (2J + 0.5).
  const Box2 domain(IntVect2(0, 0), IntVect2(7, 7));
  const mrpic::BoxArray<2> ba(domain);
  const mrpic::Geometry<2> geom(domain, RealVect2(0, 0), RealVect2(8e-6, 8e-6),
                                {false, false});
  mrpic::MultiFab<2> mf(ba, 3, 0);
  mf.set_val(0);
  auto& fab = mf.fab(0);
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 8; ++i) { fab(IntVect2(i, j), 1) = Real(i + 10 * j); }
  }

  const auto fr = insitu::downsample_slice<2>(mf, geom, 1, 2, "Ey");
  EXPECT_EQ(fr.kind, FrameKind::FieldSlice);
  EXPECT_EQ(fr.name, "Ey");
  ASSERT_EQ(fr.nx, 4u);
  ASSERT_EQ(fr.ny, 4u);
  for (std::uint32_t J = 0; J < 4; ++J) {
    for (std::uint32_t I = 0; I < 4; ++I) {
      const double expect = (2.0 * I + 0.5) + 10.0 * (2.0 * J + 0.5);
      EXPECT_NEAR(fr.at(I, J), expect, 1e-5) << "block " << I << "," << J;
    }
  }
  // Physical extents cover the sliced domain.
  EXPECT_NEAR(fr.x0, 0.0, 1e-12);
  EXPECT_NEAR(fr.x1, 8e-6, 1e-12);
}

TEST(InsituStreaming, PhaseSpaceFrameCarriesCounts) {
  diag::PhaseSpaceConfig cfg;
  cfg.ax = diag::Axis::X0;
  cfg.ay = diag::Axis::Ux;
  cfg.a_min = 0;
  cfg.a_max = 4;
  cfg.b_min = -1;
  cfg.b_max = 1;
  cfg.na = 4;
  cfg.nb = 2;
  diag::PhaseSpace ps(cfg);

  const mrpic::BoxArray<2> ba(Box2(IntVect2(0, 0), IntVect2(7, 7)));
  particles::ParticleContainer<2> pc(particles::Species::electron(), ba);
  pc.tile(0).push_back({0.5, 0.0}, {0.5, 0.0, 0.0}, 2.0);  // bin (0, 1)
  pc.tile(0).push_back({3.5, 0.0}, {-0.5, 0.0, 0.0}, 3.0); // bin (3, 0)
  ps.accumulate(pc);

  const auto fr = insitu::phase_space_frame(ps, "x_ux");
  EXPECT_EQ(fr.kind, FrameKind::PhaseSpace);
  ASSERT_EQ(fr.nx, 4u);
  ASSERT_EQ(fr.ny, 2u);
  EXPECT_NEAR(fr.at(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(fr.at(3, 0), 3.0, 1e-12);
  EXPECT_NEAR(fr.x0, 0.0, 1e-12);
  EXPECT_NEAR(fr.x1, 4.0, 1e-12);
  EXPECT_NEAR(fr.y0, -1.0, 1e-12);
  EXPECT_NEAR(fr.y1, 1.0, 1e-12);
}
