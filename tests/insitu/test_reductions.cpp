// insitu reductions: beam moments / normalized emittance against the
// closed form of a sampled Gaussian beam, and the spectrum summary against
// a synthetic two-population distribution.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "src/insitu/reductions.hpp"

using namespace mrpic;
using mrpic::constants::c;
using mrpic::constants::m_e;
using mrpic::constants::q_e;

namespace {

particles::ParticleContainer<2> empty_container() {
  const mrpic::BoxArray<2> ba(Box2(IntVect2(0, 0), IntVect2(7, 7)));
  return particles::ParticleContainer<2>(particles::Species::electron(), ba);
}

// Portable deterministic standard normal: Box-Muller over raw mt19937
// draws (std::normal_distribution's stream is implementation-defined).
class NormalGen {
public:
  explicit NormalGen(std::uint32_t seed) : m_rng(seed) {}
  double operator()() {
    if (m_have_spare) {
      m_have_spare = false;
      return m_spare;
    }
    const double u1 = (m_rng() + 0.5) / 4294967296.0;
    const double u2 = (m_rng() + 0.5) / 4294967296.0;
    const double r = std::sqrt(-2.0 * std::log(u1));
    m_spare = r * std::sin(2.0 * constants::pi * u2);
    m_have_spare = true;
    return r * std::cos(2.0 * constants::pi * u2);
  }

private:
  std::mt19937 m_rng;
  bool m_have_spare = false;
  double m_spare = 0;
};

// Kinetic energy E -> proper velocity magnitude u = c sqrt(gamma^2 - 1).
double u_of_energy(double e_J) {
  const double gamma = 1.0 + e_J / (m_e * c * c);
  return c * std::sqrt(gamma * gamma - 1.0);
}

// n Gaussian draws normalized to exactly zero mean and unit RMS, so the
// sampled population hits the closed-form moments to round-off and the only
// statistical residue left is the (tiny) sampled cross-correlation.
std::vector<double> unit_gaussian_draws(int n, std::uint32_t seed) {
  NormalGen gauss(seed);
  std::vector<double> v(n);
  double mean = 0;
  for (auto& x : v) {
    x = gauss();
    mean += x;
  }
  mean /= n;
  double var = 0;
  for (auto& x : v) {
    x -= mean;
    var += x * x;
  }
  const double scale = 1.0 / std::sqrt(var / n);
  for (auto& x : v) { x *= scale; }
  return v;
}

} // namespace

TEST(InsituReductions, GaussianBeamMatchesClosedForm) {
  // Uncorrelated transverse Gaussian beam riding a longitudinal drift:
  //   y ~ N(y0, sig_y), u_y ~ N(0, sig_u), u_x = u0.
  // Closed form: eps_ny = sig_y * sig_u / c, rms_y = sig_y, rms_uy = sig_u.
  const int n = 200'000;
  const double y0 = 1e-5;
  const double sig_y = 2e-6;   // [m]
  const double sig_u = 3e7;    // [m/s]
  const double u0 = 5e9;       // drift, gamma ~ 16.7
  const double w = 1e6;

  auto pc = empty_container();
  auto& t = pc.tile(0);
  t.reserve(n);
  const auto dy = unit_gaussian_draws(n, 12345);
  const auto du = unit_gaussian_draws(n, 67890);
  for (int i = 0; i < n; ++i) {
    const double y = y0 + sig_y * dy[i];
    const double uy = sig_u * du[i];
    t.push_back({0.0, Real(y)}, {Real(u0), Real(uy), 0.0}, Real(w));
  }

  insitu::BeamMomentsAccumulator<2> acc;
  acc.add(pc);
  const auto m = acc.finalize();

  EXPECT_EQ(m.count, n);
  EXPECT_NEAR(m.weight, double(n) * w, 1e-6 * double(n) * w);
  EXPECT_NEAR(m.charge_C, -q_e * n * w, 1e-6 * q_e * n * w);

  EXPECT_NEAR(m.mean_x[1], y0, 1e-3 * y0);
  EXPECT_NEAR(m.rms_x[1], sig_y, 1e-3 * sig_y);
  EXPECT_NEAR(m.rms_u[1], sig_u, 1e-3 * sig_u);
  EXPECT_NEAR(m.mean_u[0], u0, 1e-6 * u0);

  const double eps_closed = sig_y * sig_u / c;
  EXPECT_NEAR(m.emit_ny, eps_closed, 1e-3 * eps_closed);
  // No x[2] coordinate in 2D: the z-plane emittance cannot be formed.
  EXPECT_TRUE(std::isnan(m.emit_nz));

  const double gamma0 = std::sqrt(1.0 + (u0 / c) * (u0 / c));
  EXPECT_NEAR(m.mean_gamma, gamma0, 1e-4 * gamma0);
  EXPECT_GE(m.max_gamma, gamma0);
}

TEST(InsituReductions, EnergyCutSelectsBeam) {
  // A cold bulk at rest plus a hot tail; the e_min cut must count only the
  // tail (and the uncut accumulator everything).
  auto pc = empty_container();
  auto& t = pc.tile(0);
  const double u_hot = u_of_energy(10e6 * q_e); // 10 MeV
  for (int i = 0; i < 100; ++i) { t.push_back({0.0, 0.0}, {0.0, 0.0, 0.0}, 1.0); }
  for (int i = 0; i < 25; ++i) {
    t.push_back({0.0, 0.0}, {Real(u_hot), 0.0, 0.0}, 2.0);
  }

  insitu::BeamMomentsAccumulator<2> all;
  all.add(pc);
  EXPECT_EQ(all.finalize().count, 125);

  insitu::BeamMomentsAccumulator<2> cut(1e6 * q_e); // 1 MeV threshold
  cut.add(pc);
  const auto m = cut.finalize();
  EXPECT_EQ(m.count, 25);
  EXPECT_NEAR(m.weight, 50.0, 1e-12);
  EXPECT_NEAR(m.mean_energy_J, 10e6 * q_e, 1e-6 * 10e6 * q_e);
}

TEST(InsituReductions, ThreeDZPlaneEmittance) {
  // In 3D the z plane pairs x[2] with u[2]; an uncorrelated Gaussian in
  // that plane must reproduce the closed form just like the y plane.
  const mrpic::BoxArray<3> ba(Box3(IntVect3(0, 0, 0), IntVect3(7, 7, 7)));
  particles::ParticleContainer<3> pc(particles::Species::electron(), ba);
  auto& t = pc.tile(0);
  const int n = 100'000;
  const double sig_z = 1.5e-6, sig_u = 2e7;
  const auto dz = unit_gaussian_draws(n, 999);
  const auto du = unit_gaussian_draws(n, 555);
  for (int i = 0; i < n; ++i) {
    t.push_back({0.0, 0.0, Real(sig_z * dz[i])}, {1e9, 0.0, Real(sig_u * du[i])}, 1.0);
  }
  insitu::BeamMomentsAccumulator<3> acc;
  acc.add(pc);
  const auto m = acc.finalize();
  const double eps_closed = sig_z * sig_u / c;
  EXPECT_NEAR(m.emit_nz, eps_closed, 1e-3 * eps_closed);
}

TEST(InsituReductions, TwoPopulationSpectrumPeakAndFwhm) {
  // 300 weight-units at 10 MeV, 100 at 30 MeV, 1-MeV bins over 0..40 MeV:
  // the peak sits in the 10-MeV bin (center 10.5 MeV) and the half-max walk
  // crosses one empty bin on each side -> FWHM = 2 bins.
  const double mev = 1e6 * q_e;
  auto pc = empty_container();
  auto& t = pc.tile(0);
  const double u10 = u_of_energy(10.5 * mev);
  const double u30 = u_of_energy(30.5 * mev);
  for (int i = 0; i < 100; ++i) { t.push_back({0.0, 0.0}, {Real(u10), 0.0, 0.0}, 3.0); }
  for (int i = 0; i < 100; ++i) { t.push_back({0.0, 0.0}, {Real(u30), 0.0, 0.0}, 1.0); }

  const std::vector<const particles::ParticleContainer<2>*> pcs{&pc};
  const auto sum = insitu::summarize_spectrum<2>(pcs, 0, Real(40.0 * mev), 40, q_e);

  EXPECT_NEAR(sum.beam.peak_energy, 10.5 * mev, 1e-9 * mev);
  const double fwhm = 2.0 * mev;
  EXPECT_NEAR(sum.beam.energy_spread, fwhm / (10.5 * mev), 1e-12);
  EXPECT_NEAR(sum.beam.charge, 400.0 * q_e, 1e-9 * q_e);
  EXPECT_NEAR(sum.weight_total, 400.0, 1e-12);

  // The 30-MeV population fills its own bin.
  EXPECT_NEAR(sum.spectrum.counts[30], 100.0, 1e-12);
}

TEST(InsituReductions, SpectrumMergesLevelsLikeOneContainer) {
  // Splitting the same particles across two containers (level 0 + MR patch)
  // must give identical numbers to a single container.
  const double mev = 1e6 * q_e;
  const double u10 = u_of_energy(10.5 * mev);
  const double u20 = u_of_energy(20.5 * mev);

  auto whole = empty_container();
  auto part_a = empty_container();
  auto part_b = empty_container();
  for (int i = 0; i < 40; ++i) {
    whole.tile(0).push_back({0.0, 0.0}, {Real(u10), 0.0, 0.0}, 1.0);
    part_a.tile(0).push_back({0.0, 0.0}, {Real(u10), 0.0, 0.0}, 1.0);
  }
  for (int i = 0; i < 10; ++i) {
    whole.tile(0).push_back({0.0, 0.0}, {Real(u20), 0.0, 0.0}, 1.0);
    part_b.tile(0).push_back({0.0, 0.0}, {Real(u20), 0.0, 0.0}, 1.0);
  }

  const std::vector<const particles::ParticleContainer<2>*> one{&whole};
  const std::vector<const particles::ParticleContainer<2>*> two{&part_a, &part_b};
  const auto s1 = insitu::summarize_spectrum<2>(one, 0, Real(30.0 * mev), 30, q_e);
  const auto s2 = insitu::summarize_spectrum<2>(two, 0, Real(30.0 * mev), 30, q_e);

  EXPECT_EQ(s1.beam.peak_energy, s2.beam.peak_energy);
  EXPECT_EQ(s1.beam.charge, s2.beam.charge);
  EXPECT_EQ(s1.weight_total, s2.weight_total);
  ASSERT_EQ(s1.spectrum.counts.size(), s2.spectrum.counts.size());
  for (std::size_t b = 0; b < s1.spectrum.counts.size(); ++b) {
    EXPECT_EQ(s1.spectrum.counts[b], s2.spectrum.counts[b]) << "bin " << b;
  }
}
