// Acceptance gate for the in-situ observability pipeline end to end: a
// Simulation with enable_insitu must collect reduced diagnostics inside the
// "insitu" profiler region, publish insitu_* gauges, keep the JSONL series
// schema-valid and the streaming manifest consistent with the frame files,
// and a replayed (appending) incarnation must leave a canonicalizable
// series — the crash -> rollback -> replay contract of resilient_lwfa.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "src/core/simulation.hpp"
#include "src/insitu/registry.hpp"
#include "src/obs/perf_report.hpp"

using namespace mrpic;

namespace {

// The aggregate insitu_smoke ctest and the gtest-discovered InsituSmoke.*
// tests run this same code concurrently in one working directory; a per-pid
// tag keeps their artifact files from clobbering each other.
std::string unique_tag(const std::string& base) {
  return base + "_" + std::to_string(static_cast<long>(::getpid()));
}

core::SimulationConfig<2> plasma_config(int n) {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(n - 1, n - 1));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(n / 2);
  cfg.shape_order = 2;
  return cfg;
}

insitu::InsituConfig smoke_config(const std::string& tag) {
  insitu::InsituConfig icfg;
  icfg.moments_interval = 2;
  icfg.spectrum_interval = 4;
  icfg.laser_interval = 2;
  icfg.wakefield_interval = 2;
  icfg.field_energy_interval = 2;
  icfg.beam_species = 0;
  icfg.spectrum_e_min_J = 0;
  icfg.spectrum_e_max_J = 1.602e-16; // 1 keV, covers the 50 eV plasma
  icfg.spectrum_bins = 32;
  icfg.laser_wavelength = 0.8e-6;
  icfg.series_path = tag + "_series.jsonl";
  icfg.stream_interval = 5;
  icfg.stream_downsample = 2;
  icfg.stream_components = {0, 1};
  icfg.phase_space.ax = diag::Axis::Energy;
  icfg.phase_space.ay = diag::Axis::Ux;
  icfg.phase_space.a_max = 1.602e-16;
  icfg.phase_space.b_min = -1e7;
  icfg.phase_space.b_max = 1e7;
  icfg.phase_space.na = 16;
  icfg.phase_space.nb = 16;
  icfg.stream.basename = tag + "_stream";
  return icfg;
}

void run_plasma(core::Simulation<2>& sim, int steps) {
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  sim.run(steps);
}

void cleanup(const std::string& tag) {
  std::remove((tag + "_series.jsonl").c_str());
  for (int i = 0; i < 8; ++i) {
    char path[256];
    std::snprintf(path, sizeof(path), "%s_stream.%03d.bin", tag.c_str(), i);
    std::remove(path);
  }
  std::remove((tag + "_stream.manifest.json").c_str());
}

} // namespace

TEST(InsituSmoke, PipelineEndToEnd) {
  const std::string tag = unique_tag("insitu_sim_smoke");
  cleanup(tag);
  core::Simulation<2> sim(plasma_config(16));
  sim.enable_insitu(smoke_config(tag));
  ASSERT_TRUE(sim.insitu_enabled());
  run_plasma(sim, 20);

  // Reduced diagnostics ran inside their own profiler region.
  const auto& reg = *sim.insitu();
  EXPECT_GT(reg.num_records(), 0);
  const auto totals = sim.profiler().flat_totals();
  ASSERT_TRUE(totals.count("insitu"));
  ASSERT_TRUE(totals.count("step"));
  EXPECT_GT(totals.at("insitu").count, 0);
  EXPECT_LT(totals.at("insitu").inclusive_s, totals.at("step").inclusive_s);

  // Gauges carry the latest record (the whole plasma is the "beam" here).
  const auto* beam = reg.last("beam");
  ASSERT_NE(beam, nullptr);
  EXPECT_GT(beam->value("count"), 0);
  EXPECT_TRUE(std::isfinite(beam->value("emit_ny_m_rad")));
  EXPECT_DOUBLE_EQ(sim.metrics().gauge_value("insitu_beam_count"),
                   beam->value("count"));
  EXPECT_GT(sim.metrics().gauge_value("insitu_field_energy_level0_total_J"), 0.0);

  // Durable series: schema-valid JSONL with one object per record.
  EXPECT_TRUE(insitu::Registry::validate_series(reg.series_path()).empty());
  EXPECT_EQ(static_cast<std::int64_t>(
                insitu::Registry::read_series_jsonl(reg.series_path()).size()),
            reg.num_records());

  // Streaming exporter: manifest schema-valid and consistent with the
  // complete frames actually on disk.
  const auto* sw = sim.insitu_stream();
  ASSERT_NE(sw, nullptr);
  EXPECT_GT(sw->frames_written(), 0);
  EXPECT_EQ(sw->frames_written() % 3, 0); // Ex + Ey + phase space per trigger
  std::vector<std::string> errors;
  const auto man = insitu::read_manifest(sw->manifest_path(), &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(man.total_frames, sw->frames_written());
  std::int64_t on_disk = 0;
  for (const auto& mf : man.files) {
    bool truncated = true;
    on_disk += static_cast<std::int64_t>(insitu::read_frames(mf.file, &truncated).size());
    EXPECT_FALSE(truncated) << mf.file;
  }
  EXPECT_EQ(on_disk, man.total_frames);

  // Final force-collect (end-of-run records regardless of cadence) feeds
  // the example's printed beam summary.
  const auto before = reg.num_records();
  sim.insitu()->collect(sim.step_count(), sim.time(), /*force=*/true);
  EXPECT_EQ(reg.num_records(), before + reg.size());
  ASSERT_NE(sim.last_spectrum(), nullptr);
  ASSERT_NE(sim.last_beam_moments(), nullptr);
  EXPECT_GT(sim.last_beam_moments()->count, 0);

  // The perf-report section summarizes the same registry + stream counters.
  const auto section = obs::summarize_insitu(reg, sim.profiler(), sw);
  EXPECT_TRUE(section.enabled);
  EXPECT_EQ(section.records, reg.num_records());
  EXPECT_GT(section.probe_s, 0.0);
  EXPECT_TRUE(std::isfinite(section.emit_ny));
  EXPECT_EQ(section.stream_frames, sw->frames_written());

  obs::PerfReport report;
  report.title = "insitu smoke";
  report.beam = section;
  std::ostringstream md;
  obs::write_markdown(report, md);
  EXPECT_NE(md.str().find("## Beam physics"), std::string::npos);
  cleanup(tag);
}

TEST(InsituSmoke, ReplayAppendKeepsSeriesCanonicalizable) {
  const std::string tag = unique_tag("insitu_sim_replay");
  cleanup(tag);
  auto icfg = smoke_config(tag);
  icfg.stream_interval = 0; // series continuity is the subject here

  std::int64_t first_records = 0;
  {
    core::Simulation<2> sim(plasma_config(16));
    sim.enable_insitu(icfg);
    run_plasma(sim, 12);
    first_records = sim.insitu()->num_records();
  }
  {
    // A replay incarnation (resil rebuilds the Simulation from a rollback):
    // same series, append mode, steps re-run from the beginning.
    icfg.series_append = true;
    core::Simulation<2> sim(plasma_config(16));
    sim.enable_insitu(icfg);
    run_plasma(sim, 8);
  }

  const std::string path = tag + "_series.jsonl";
  EXPECT_TRUE(insitu::Registry::validate_series(path).empty());
  const auto raw = insitu::Registry::read_series_jsonl(path);
  EXPECT_GT(static_cast<std::int64_t>(raw.size()), first_records);
  const auto canon = insitu::Registry::canonicalize(raw);
  EXPECT_LT(canon.size(), raw.size()); // the replayed overlap collapsed
  std::int64_t last_step = -1;
  for (const auto& r : canon) {
    if (r.diag != "beam") { continue; }
    EXPECT_GT(r.step, last_step);
    last_step = r.step;
  }
  EXPECT_GE(last_step, 0);
  cleanup(tag);
}
