// insitu::Registry: cadences, gauge publication, the durable JSONL series
// (append + flush, NaN -> null), and the reader-side canonicalization that
// collapses a rollback's replayed overlap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/insitu/registry.hpp"
#include "src/obs/metrics.hpp"

using namespace mrpic;
using insitu::Record;
using insitu::Registry;

TEST(InsituRegistry, DueFollowsHealthCadenceRule) {
  EXPECT_TRUE(Registry::due(0, 10));
  EXPECT_TRUE(Registry::due(20, 10));
  EXPECT_FALSE(Registry::due(5, 10));
  EXPECT_FALSE(Registry::due(7, 0));  // 0 = never
  EXPECT_TRUE(Registry::due(3, 1));
}

TEST(InsituRegistry, CollectRunsDueDiagnosticsAndPublishesGauges) {
  Registry reg;
  obs::MetricsRegistry metrics;
  reg.set_metrics(&metrics);
  int a_runs = 0, b_runs = 0;
  reg.add("a", 1, [&](Record& r) { r.set("x", ++a_runs); });
  reg.add("b", 2, [&](Record& r) { r.set("y", 10.0 * ++b_runs); });
  EXPECT_EQ(reg.size(), 2);

  for (std::int64_t s = 0; s < 4; ++s) { reg.collect(s, 1e-15 * s); }
  EXPECT_EQ(a_runs, 4);
  EXPECT_EQ(b_runs, 2); // steps 0 and 2
  EXPECT_EQ(reg.num_records(), 6);

  EXPECT_DOUBLE_EQ(metrics.gauge_value("insitu_a_x"), 4.0);
  EXPECT_DOUBLE_EQ(metrics.gauge_value("insitu_b_y"), 20.0);

  const auto* last_b = reg.last("b");
  ASSERT_NE(last_b, nullptr);
  EXPECT_EQ(last_b->step, 2);
  EXPECT_DOUBLE_EQ(last_b->value("y"), 20.0);
  EXPECT_TRUE(std::isnan(last_b->value("missing_key")));
  EXPECT_EQ(reg.last("nope"), nullptr);

  // force ignores cadences: both run even though step 5 matches neither.
  EXPECT_EQ(reg.collect(5, 0.0, /*force=*/true), 2);
  EXPECT_EQ(reg.num_records(), 8);
}

TEST(InsituRegistry, AnyDueAndHistoryLimit) {
  Registry reg;
  reg.add("a", 4, [](Record&) {});
  EXPECT_TRUE(reg.any_due(0));
  EXPECT_FALSE(reg.any_due(3));
  EXPECT_TRUE(reg.any_due(8));

  reg.set_history_limit(3);
  for (std::int64_t s = 0; s <= 40; s += 4) { reg.collect(s, 0.0); }
  EXPECT_EQ(reg.history().size(), 3u);       // ring-bounded in memory...
  EXPECT_EQ(reg.num_records(), 11);          // ...but the total count survives
  EXPECT_EQ(reg.history().back().step, 40);
}

TEST(InsituRegistry, SeriesRoundTripPreservesNaN) {
  const std::string path = "insitu_series_rt.jsonl";
  {
    Registry reg;
    ASSERT_TRUE(reg.open_series(path, /*append=*/false));
    reg.add("probe", 1, [](Record& r) {
      r.set("finite", 2.5);
      r.set("hole", std::numeric_limits<double>::quiet_NaN());
    });
    reg.collect(0, 0.0);
    reg.collect(1, 1e-15);
  }
  EXPECT_TRUE(Registry::validate_series(path).empty());

  const auto records = Registry::read_series_jsonl(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].step, 1);
  EXPECT_DOUBLE_EQ(records[1].value("finite"), 2.5);
  // JSON has no NaN: the writer emits null and the reader restores NaN.
  EXPECT_TRUE(std::isnan(records[1].value("hole")));
  std::remove(path.c_str());
}

TEST(InsituRegistry, AppendModeContinuesExistingSeries) {
  const std::string path = "insitu_series_append.jsonl";
  auto run = [&](std::int64_t first, std::int64_t last, double v, bool append) {
    Registry reg;
    ASSERT_TRUE(reg.open_series(path, append));
    reg.add("probe", 1, [&](Record& r) { r.set("v", v); });
    for (std::int64_t s = first; s <= last; ++s) { reg.collect(s, 0.0); }
  };
  run(0, 5, 1.0, /*append=*/false);  // initial incarnation
  run(3, 8, 2.0, /*append=*/true);   // replay after rollback to step 3

  const auto raw = Registry::read_series_jsonl(path);
  EXPECT_EQ(raw.size(), 12u);
  const auto canon = Registry::canonicalize(raw);
  ASSERT_EQ(canon.size(), 9u); // steps 0..8, overlap 3..5 collapsed
  for (std::size_t i = 0; i < canon.size(); ++i) {
    EXPECT_EQ(canon[i].step, static_cast<std::int64_t>(i));
    // Last occurrence wins: the replayed values are the run's trajectory.
    EXPECT_DOUBLE_EQ(canon[i].value("v"), i >= 3 ? 2.0 : 1.0);
  }
  // The overlapping file is still a valid series (monotone after collapse).
  EXPECT_TRUE(Registry::validate_series(path).empty());
  std::remove(path.c_str());
}

TEST(InsituRegistry, ValidateSeriesFlagsGarbageAndDisorder) {
  const std::string path = "insitu_series_bad.jsonl";
  {
    std::ofstream os(path);
    os << R"({"diag":"a","step":4,"time":0,"values":{"x":1}})" << '\n';
    os << "this is not json" << '\n';
    os << R"({"diag":"a","step":-3,"time":0,"values":{"x":1}})" << '\n';
    os << R"({"step":7,"time":0,"values":{}})" << '\n'; // missing diag
  }
  const auto errors = Registry::validate_series(path);
  ASSERT_GE(errors.size(), 3u);
  bool parse_err = false, schema_err = false, negative_err = false;
  for (const auto& e : errors) {
    if (e.find("line 2") != std::string::npos) { parse_err = true; }
    if (e.find("line 4") != std::string::npos) { schema_err = true; }
    if (e.find("negative step") != std::string::npos) { negative_err = true; }
  }
  EXPECT_TRUE(parse_err);
  EXPECT_TRUE(schema_err);
  EXPECT_TRUE(negative_err);
  std::remove(path.c_str());
}
