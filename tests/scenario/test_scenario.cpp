// Scenario subsystem tests: ModuleRange cadence arithmetic, the registry
// contract (>= 10 workloads, lookup, duplicate rejection), a stepping smoke
// of every registered scenario, and the ScenarioEquivalence bit-identity
// guarantee — a spec-built simulation must match the legacy hand-rolled
// example setup field-for-field and particle-for-particle.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "src/boost/lorentz.hpp"
#include "src/scenario/builder.hpp"
#include "src/scenario/library.hpp"
#include "src/scenario/registry.hpp"

namespace mrpic::scenario {
namespace {

using namespace mrpic::constants;

TEST(ModuleRange, DueHonorsStartEveryEnabled) {
  const ModuleRange r{true, 10, 5};
  EXPECT_FALSE(r.due(0));
  EXPECT_FALSE(r.due(9));
  EXPECT_TRUE(r.due(10));
  EXPECT_FALSE(r.due(12));
  EXPECT_TRUE(r.due(15));
  EXPECT_TRUE(r.due(100));

  const ModuleRange off{false, 0, 5};
  EXPECT_FALSE(off.due(0));
  EXPECT_FALSE(off.due(5));

  const ModuleRange never{true, 0, 0}; // every = 0 means "never"
  EXPECT_FALSE(never.due(0));
  EXPECT_FALSE(never.due(100));

  const ModuleRange each{true, 0, 1};
  EXPECT_TRUE(each.due(0));
  EXPECT_TRUE(each.due(1));
}

TEST(ScenarioRegistry, HoldsTheWorkloadCatalog) {
  auto& reg = ScenarioRegistry::instance();
  EXPECT_GE(reg.entries().size(), 10u);

  // The five legacy examples plus the tentpole growth scenarios.
  for (const char* name :
       {"quickstart", "uniform_psatd", "lwfa", "lwfa_mr", "lwfa_downramp",
        "lwfa_ionization", "lwfa_two_stage", "boosted_lwfa", "plasma_mirror",
        "hybrid_target_mr", "thin_foil_ion"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    const ScenarioSpec spec = reg.make(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.title.empty()) << name;
    EXPECT_FALSE(spec.output_prefix.empty()) << name;
    EXPECT_FALSE(spec.species.empty()) << name;
    EXPECT_GT(spec.t_end, 0) << name;
  }

  EXPECT_FALSE(reg.contains("not_a_scenario"));
  EXPECT_THROW(reg.make("not_a_scenario"), std::out_of_range);
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  ScenarioRegistry reg;
  EXPECT_TRUE(reg.add("a", "first", make_quickstart));
  EXPECT_FALSE(reg.add("a", "second", make_quickstart));
  EXPECT_EQ(reg.entries().size(), 1u);
  EXPECT_EQ(reg.find("a")->title, "first");
}

TEST(ScenarioBuilder, FoldsCadencesIntoSimConfig) {
  ScenarioSpec spec = make_lwfa();
  spec.cadences.sort = {true, 0, 7};
  spec.cadences.rebalance = {true, 0, 13};
  auto cfg = effective_sim_config(spec);
  EXPECT_EQ(cfg.sort_interval, 7);
  EXPECT_TRUE(cfg.dynamic_lb);
  EXPECT_EQ(cfg.lb_interval, 13);

  spec.cadences.sort.enabled = false;
  spec.cadences.rebalance.enabled = false;
  cfg = effective_sim_config(spec);
  EXPECT_EQ(cfg.sort_interval, 0);
  EXPECT_FALSE(cfg.dynamic_lb);
}

// Every registered scenario must build and survive a few steps with finite
// fields — the guarantee behind `mrpic_run --scenario <anything>`.
TEST(ScenarioSmoke, EveryRegisteredScenarioSteps) {
  auto& reg = ScenarioRegistry::instance();
  for (const auto& entry : reg.entries()) {
    SCOPED_TRACE(entry.name);
    const ScenarioSpec spec = reg.make(entry.name);
    auto sim = build_simulation(spec);
    EXPECT_GT(sim->total_particles(), 0);
    for (int s = 0; s < 3; ++s) { sim->step(); }
    EXPECT_TRUE(std::isfinite(sim->fields().field_energy()));
    EXPECT_TRUE(std::isfinite(sim->total_energy()));
  }
}

// --- ScenarioEquivalence: spec-built == legacy hand-rolled, bitwise -------

bool fields_identical(const MultiFab<2>& a, const MultiFab<2>& b) {
  if (a.num_fabs() != b.num_fabs()) { return false; }
  for (int m = 0; m < a.num_fabs(); ++m) {
    if (a.fab(m).size() != b.fab(m).size()) { return false; }
    for (std::size_t i = 0; i < a.fab(m).size(); ++i) {
      if (a.fab(m).data()[i] != b.fab(m).data()[i]) { return false; }
    }
  }
  return true;
}

bool particles_identical(const particles::ParticleContainer<2>& a,
                         const particles::ParticleContainer<2>& b) {
  if (a.num_tiles() != b.num_tiles()) { return false; }
  for (int t = 0; t < a.num_tiles(); ++t) {
    const auto& ta = a.tile(t);
    const auto& tb = b.tile(t);
    if (ta.size() != tb.size()) { return false; }
    for (std::size_t p = 0; p < ta.size(); ++p) {
      for (int d = 0; d < 2; ++d) {
        if (ta.x[d][p] != tb.x[d][p]) { return false; }
      }
      for (int cc = 0; cc < 3; ++cc) {
        if (ta.u[cc][p] != tb.u[cc][p]) { return false; }
      }
      if (ta.w[p] != tb.w[p]) { return false; }
    }
  }
  return true;
}

void expect_equivalent(core::Simulation<2>& a, core::Simulation<2>& b,
                       std::size_t nspecies) {
  EXPECT_EQ(a.step_count(), b.step_count());
  EXPECT_EQ(a.total_particles(), b.total_particles());
  EXPECT_TRUE(fields_identical(a.fields().E(), b.fields().E()));
  EXPECT_TRUE(fields_identical(a.fields().B(), b.fields().B()));
  for (std::size_t s = 0; s < nspecies; ++s) {
    SCOPED_TRACE("species " + std::to_string(s));
    EXPECT_TRUE(particles_identical(a.species_level0(static_cast<int>(s)),
                                    b.species_level0(static_cast<int>(s))));
  }
}

// The legacy laser_wakefield.cpp setup, verbatim (pre-scenario shape).
std::unique_ptr<core::Simulation<2>> legacy_lwfa() {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(599, 49));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(30e-6, 10e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 10;
  cfg.max_grid_size = IntVect2(150, 50);
  cfg.shape_order = 3;
  cfg.nranks = 4;
  cfg.dynamic_lb = true;
  cfg.lb_interval = 50;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::gas_jet<2>(5e25, 8e-6, 500e-6, 4e-6);
  inj.ppc = IntVect2(1, 2);
  sim->add_species(particles::Species::electron(), inj);

  laser::LaserConfig lc;
  lc.a0 = 3.5;
  lc.wavelength = 0.8e-6;
  lc.waist = 3.5e-6;
  lc.duration = 9e-15;
  lc.t_peak = 20e-15;
  lc.x_antenna = 2e-6;
  lc.center = {5e-6, 0};
  lc.focal_distance = 10e-6;
  sim->add_laser(lc);
  sim->set_moving_window(0, c, 40e-15);
  sim->init();
  return sim;
}

TEST(ScenarioEquivalence, LwfaMatchesLegacySetup) {
  auto legacy = legacy_lwfa();
  auto built = build_simulation(make_lwfa());
  for (int s = 0; s < 25; ++s) {
    legacy->step();
    built->step();
  }
  expect_equivalent(*legacy, *built, 1);
}

// The legacy hybrid_target_mr.cpp setup, verbatim (with the MR patch).
std::unique_ptr<core::Simulation<2>> legacy_hybrid() {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(599, 49));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(30e-6, 10e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 10;
  cfg.max_grid_size = IntVect2(150, 50);
  cfg.shape_order = 3;
  cfg.mr_remove_when_lo_above = 4.6e-6;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  const Real nc = plasma::critical_density(0.8e-6);
  plasma::InjectorConfig<2> gas_inj;
  gas_inj.density = plasma::gas_jet<2>(0.025 * nc, 5.5e-6, 800e-6, 2e-6);
  gas_inj.ppc = IntVect2(1, 2);
  sim->add_species(particles::Species::electron("gas_electrons"), gas_inj);

  plasma::InjectorConfig<2> solid_inj;
  solid_inj.density = plasma::slab<2>(15 * nc, 3e-6, 4.5e-6);
  solid_inj.ppc = IntVect2(3, 2);
  sim->add_species(particles::Species::electron("solid_electrons"), solid_inj);
  plasma::InjectorConfig<2> ion_inj = solid_inj;
  sim->add_species(particles::Species::proton("solid_ions"), ion_inj);

  laser::LaserConfig lc;
  lc.a0 = 6.0;
  lc.wavelength = 0.8e-6;
  lc.waist = 3e-6;
  lc.duration = 9e-15;
  lc.t_peak = 16e-15;
  lc.x_antenna = 20e-6;
  lc.center = {5e-6, 0};
  lc.polarization = 1;
  sim->add_laser(lc);

  mr::MRPatch<2>::Config pcfg;
  pcfg.region = Box2(IntVect2(40, 4), IntVect2(139, 45));
  pcfg.ratio = 2;
  pcfg.transition_cells = 2;
  pcfg.pml.npml = 8;
  sim->enable_mr_patch(pcfg);
  sim->set_moving_window(0, c, 75e-15);
  sim->init();
  return sim;
}

TEST(ScenarioEquivalence, HybridTargetMrMatchesLegacySetup) {
  auto legacy = legacy_hybrid();
  auto built = build_simulation(make_hybrid_target_mr());
  for (int s = 0; s < 15; ++s) {
    legacy->step();
    built->step();
  }
  expect_equivalent(*legacy, *built, 3);
  // The MR patch is live on both sides of the comparison.
  ASSERT_NE(legacy->patch(), nullptr);
  ASSERT_NE(built->patch(), nullptr);
  EXPECT_TRUE(legacy->patch()->active());
  EXPECT_TRUE(built->patch()->active());
  for (int s = 0; s < 3; ++s) {
    SCOPED_TRACE("patch species " + std::to_string(s));
    EXPECT_TRUE(particles_identical(legacy->species_patch(s), built->species_patch(s)));
  }
}

// The legacy boosted_frame.cpp setup, verbatim: counter-streaming plasma
// loaded post-init by looping tiles.
std::unique_ptr<core::Simulation<2>> legacy_boosted(Real gamma_b) {
  const mrpic::boost::BoostedFrame frame(gamma_b);
  const Real lam_boost = frame.copropagating_wavelength(0.8e-6);
  const Real n_boost = frame.plasma_density_boosted(1e25);
  const Real dx_boost = lam_boost / 16;

  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(319, 31));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(320 * dx_boost, 8e-6);
  cfg.periodic = {false, true};
  cfg.use_pml = true;
  cfg.pml.npml = 8;
  cfg.max_grid_size = IntVect2(320, 32);
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::gas_jet<2>(n_boost, 6 * dx_boost * 16, 1.0, 2e-6);
  inj.ppc = IntVect2(1, 2);
  const int s = sim->add_species(particles::Species::electron(), inj);

  laser::LaserConfig lc;
  lc.a0 = 2.0;
  lc.wavelength = lam_boost;
  lc.waist = 3e-6;
  lc.duration = frame.copropagating_duration(8e-15);
  lc.t_peak = 2.2 * lc.duration;
  lc.x_antenna = 2 * dx_boost * 16;
  lc.center = {4e-6, 0};
  sim->add_laser(lc);
  sim->init();

  auto& pc = sim->species_level0(s);
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    auto& tile = pc.tile(ti);
    for (std::size_t p = 0; p < tile.size(); ++p) {
      tile.u[0][p] = frame.plasma_drift_ux();
    }
  }
  return sim;
}

TEST(ScenarioEquivalence, BoostedLwfaMatchesLegacySetup) {
  auto legacy = legacy_boosted(2.0);
  auto built = build_simulation(make_boosted_lwfa(2.0));
  // The spec carries the drift declaratively (SpeciesSpec::drift_ux); the
  // loaded plasma must stream identically to the legacy tile loop.
  for (int s = 0; s < 20; ++s) {
    legacy->step();
    built->step();
  }
  expect_equivalent(*legacy, *built, 1);
}

} // namespace
} // namespace mrpic::scenario
