// Campaign-telemetry acceptance gates (ISSUE 10).
//
// CampaignSmoke.*: three heterogeneous runs through the real scenario
// driver — two completed quickstart runs with different flag sets and one
// health-watchdog-aborted run — land in one campaign directory; every
// run.json validates, the heartbeat and timeline artifacts exist, and the
// aggregator joins the lot into a report whose counts, manifests-valid
// verdict and failed-run triage are all checked.
//
// EventTimeline.*: one simulation wired to a single obs::EventLog must
// produce a timeline holding all four producer categories — lifecycle
// (init), health (watchdog alert), resil (automatic checkpoint), rebalance
// (load-balancer remap) — with seq strictly increasing and wall_s
// nondecreasing in disk order (the ordering contract).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <limits>
#include <set>
#include <sstream>

#include "src/core/simulation.hpp"
#include "src/diag/output_dir.hpp"
#include "src/health/monitor.hpp"
#include "src/obs/campaign.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/json.hpp"
#include "src/obs/run_manifest.hpp"
#include "src/plasma/plasma_injector.hpp"
#include "src/resil/checkpoint_policy.hpp"
#include "src/scenario/builder.hpp"
#include "src/scenario/driver.hpp"
#include "src/scenario/registry.hpp"

namespace mrpic {
namespace {

TEST(CampaignSmoke, ThreeHeterogeneousRunsAggregateEndToEnd) {
  const std::string camp = "test_campaign_smoke";
  std::filesystem::remove_all(camp);

  auto& reg = scenario::ScenarioRegistry::instance();
  const scenario::ScenarioSpec quickstart = reg.make("quickstart");

  // Run 1: plain quickstart, a handful of steps.
  {
    scenario::RunOptions opt;
    opt.steps = 8;
    opt.run_id = "smoke-plain";
    EXPECT_EQ(scenario::run_scenario(quickstart, opt, diag::OutputDir(camp + "/run_plain")),
              0);
  }
  // Run 2: the full observability flag set at a non-default heartbeat cadence.
  {
    scenario::RunOptions opt;
    opt.steps = 8;
    opt.health = true;
    opt.insitu = true;
    opt.heartbeat = 2;
    opt.run_id = "smoke-obs";
    EXPECT_EQ(scenario::run_scenario(quickstart, opt, diag::OutputDir(camp + "/run_obs")),
              0);
  }
  // Run 3: a health bound rule that cannot hold (num_particles <= 0) fires
  // Critical+abort on the first probe; the driver must exit nonzero and the
  // manifest must say "aborted".
  {
    scenario::ScenarioSpec doomed = quickstart;
    doomed.name = "quickstart_doomed";
    doomed.output_prefix = "doomed";
    doomed.health.log_to_stderr = false;
    doomed.health.watchdog.bounds.push_back({"num_particles", 0.0, 0.0,
                                             health::Severity::Critical,
                                             {/*checkpoint=*/false, /*abort=*/true}});
    scenario::RunOptions opt;
    opt.steps = 8;
    opt.health = true;
    opt.run_id = "smoke-aborted";
    EXPECT_EQ(scenario::run_scenario(doomed, opt, diag::OutputDir(camp + "/run_aborted")),
              1);
  }

  // Every run directory carries the telemetry trio.
  for (const char* run : {"run_plain", "run_obs", "run_aborted"}) {
    const std::string dir = camp + "/" + run;
    EXPECT_TRUE(std::filesystem::exists(dir + "/run.json")) << run;
    EXPECT_TRUE(std::filesystem::exists(dir + "/progress.json")) << run;
  }

  // Aggregate: all three manifests validate, statuses and scenarios join,
  // the aborted run surfaces in the triage with its watchdog reason.
  const obs::CampaignReport rep = obs::scan_campaign(camp);
  EXPECT_EQ(rep.runs_total(), 3);
  EXPECT_EQ(rep.runs_valid(), 3);
  EXPECT_EQ(rep.runs_with_status(obs::kRunStatusCompleted), 2);
  EXPECT_EQ(rep.runs_with_status(obs::kRunStatusAborted), 1);
  EXPECT_EQ(rep.scenarios.size(), 2u);  // quickstart + quickstart_doomed

  std::set<std::string> run_ids;
  for (const auto& r : rep.runs) {
    run_ids.insert(r.manifest.run_id);
    EXPECT_TRUE(r.manifest_ok) << r.dir;
    EXPECT_TRUE(r.events_monotone) << r.dir;
    EXPECT_GT(r.num_events, 0) << r.dir;
    EXPECT_GT(r.metrics_records, 0) << r.dir;
    EXPECT_FALSE(r.manifest.spec_digest.empty()) << r.dir;
  }
  EXPECT_EQ(run_ids,
            (std::set<std::string>{"smoke-plain", "smoke-obs", "smoke-aborted"}));

  const obs::RunSummary* aborted = nullptr;
  for (const auto& r : rep.runs) {
    if (r.manifest.status == obs::kRunStatusAborted) { aborted = &r; }
  }
  ASSERT_NE(aborted, nullptr);
  EXPECT_EQ(aborted->manifest.run_id, "smoke-aborted");
  EXPECT_EQ(aborted->manifest.exit_code, 1);
  EXPECT_FALSE(aborted->manifest.reason.empty());
  EXPECT_GT(aborted->num_critical, 0);
  // The completed runs' spec digests agree (same spec), the doomed one's
  // differs (different name -> different workload identity).
  EXPECT_EQ(rep.runs[1].manifest.spec_digest, rep.runs[2].manifest.spec_digest)
      << "both quickstart runs";
  EXPECT_NE(aborted->manifest.spec_digest, rep.runs[1].manifest.spec_digest);

  // The rendered report carries the CI-grepped section and the triage.
  std::ostringstream md;
  obs::write_campaign_markdown(rep, md);
  EXPECT_NE(md.str().find("## Campaign"), std::string::npos);
  EXPECT_NE(md.str().find("smoke-aborted"), std::string::npos);

  std::filesystem::remove_all(camp);
}

TEST(CampaignSmoke, ManifestRecordsFlagsAndArtifactInventory) {
  const std::string dir = "test_campaign_manifest_run";
  std::filesystem::remove_all(dir);
  auto& reg = scenario::ScenarioRegistry::instance();

  scenario::RunOptions opt;
  opt.steps = 6;
  opt.insitu = true;
  opt.run_id = "inventory-probe";
  ASSERT_EQ(scenario::run_scenario(reg.make("quickstart"), opt, diag::OutputDir(dir)), 0);

  const obs::RunManifest m = obs::read_manifest(dir + "/run.json");
  EXPECT_EQ(m.run_id, "inventory-probe");
  EXPECT_EQ(m.status, obs::kRunStatusCompleted);
  EXPECT_EQ(m.steps_done, 6);
  EXPECT_GT(m.num_events, 0);
  // Normalized flags are recorded for reproducibility.
  EXPECT_NE(std::find(m.flags.begin(), m.flags.end(), "--steps 6"), m.flags.end());
  EXPECT_NE(std::find(m.flags.begin(), m.flags.end(), "--insitu"), m.flags.end());
  // Written artifacts stat to positive sizes; the inventory names the trio.
  std::set<std::string> names;
  for (const auto& a : m.artifacts) {
    names.insert(a.name);
    if (a.name == "events" || a.name == "metrics" || a.name == "insitu") {
      EXPECT_GT(a.bytes, 0) << a.name;
    }
  }
  EXPECT_TRUE(names.count("events"));
  EXPECT_TRUE(names.count("progress"));
  EXPECT_TRUE(names.count("metrics"));
  EXPECT_TRUE(names.count("insitu"));
  std::filesystem::remove_all(dir);
}

TEST(EventTimeline, AllProducerCategoriesArriveInOrder) {
  const std::string path = "test_event_timeline.jsonl";
  std::remove(path.c_str());

  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(31, 31));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(32e-7, 32e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(16);
  cfg.shape_order = 2;
  core::Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);

  obs::EventLogConfig ecfg;
  ecfg.path = path;
  obs::EventLog elog(ecfg);
  sim.enable_event_log(&elog);
  elog.publish("lifecycle", "run_start", obs::EventSeverity::Info, -1);

  // Health: a Warn bound that always trips (num_particles >= 1e18 required).
  health::MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.watchdog.bounds.push_back(
      {"num_particles", 1e18, std::numeric_limits<double>::infinity(),
       health::Severity::Warn,
       {/*checkpoint=*/false, /*abort=*/false}});
  sim.enable_health(hcfg);

  // Resil: periodic automatic checkpoints every 2 steps.
  resil::CheckpointPolicyConfig ccfg;
  ccfg.mode = resil::CheckpointMode::Periodic;
  ccfg.interval_steps = 2;
  sim.set_checkpoint_policy(resil::CheckpointPolicy(ccfg),
                            [](core::Simulation<2>&) { return true; });

  sim.init();  // publishes lifecycle/init
  sim.run(5);

  // Rebalance: a remap snapshot through the same recorder seam the load
  // balancer uses (count_rebalance -> RankRecorder::add_rebalance).
  obs::RebalanceRecord rb;
  rb.step = sim.step_count();
  rb.rank_cost_before = {3.0, 1.0};
  rb.rank_cost_after = {2.0, 2.0};
  rb.imbalance_before = 1.5;
  rb.imbalance_after = 1.0;
  sim.rank_recorder().add_rebalance(rb);

  elog.publish("lifecycle", "run_end", obs::EventSeverity::Info, sim.step_count());

  std::size_t skipped = 0;
  const auto events = obs::EventLog::read_events_jsonl(path, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_GE(events.size(), 5u);

  // The ordering contract: seq strictly increasing AND wall_s nondecreasing
  // in disk order.
  std::set<std::string> categories;
  for (std::size_t i = 0; i < events.size(); ++i) {
    categories.insert(events[i].category);
    if (i > 0) {
      EXPECT_GT(events[i].seq, events[i - 1].seq);
      EXPECT_GE(events[i].wall_s, events[i - 1].wall_s);
    }
  }
  EXPECT_TRUE(categories.count("lifecycle"));
  EXPECT_TRUE(categories.count("health"));
  EXPECT_TRUE(categories.count("resil"));
  EXPECT_TRUE(categories.count("rebalance"));

  // Spot-check each producer's payload made it through the funnel.
  bool saw_init = false, saw_alert = false, saw_ckpt = false, saw_remap = false;
  for (const auto& ev : events) {
    if (ev.category == "lifecycle" && ev.kind == "init") { saw_init = true; }
    if (ev.category == "health" && ev.kind == "alert") {
      saw_alert = true;
      EXPECT_EQ(ev.severity, obs::EventSeverity::Warn);
    }
    if (ev.category == "resil" && ev.kind == "checkpoint") { saw_ckpt = true; }
    if (ev.category == "rebalance" && ev.kind == "remap") {
      saw_remap = true;
      EXPECT_DOUBLE_EQ(ev.value("imbalance_before"), 1.5);
      EXPECT_DOUBLE_EQ(ev.value("imbalance_after"), 1.0);
    }
  }
  EXPECT_TRUE(saw_init);
  EXPECT_TRUE(saw_alert);
  EXPECT_TRUE(saw_ckpt);
  EXPECT_TRUE(saw_remap);
  std::remove(path.c_str());
}

} // namespace
} // namespace mrpic
