// MemorySmoke: end-to-end memory observability through Simulation<DIM>.
// Acceptance gates from the memory-observability milestone:
//  - a memory-obs run publishes mem_* gauges every probe step and the
//    process-global ledger conserves to the byte (charged - released ==
//    current, checked with EXPECT_EQ, not a tolerance),
//  - the ledger-measured MR memory-savings factor is > 1 and agrees with
//    the analytic structural model within 10%,
//  - with cluster obs on, the per-rank resident-bytes lanes sum exactly to
//    the ledger total (the model distributes every byte) and export as
//    memory_heatmap.csv, feeding predict_first_oom,
//  - a health BoundRule on mem_total_bytes fires checkpoint-now -> abort
//    before a simulated OOM surcharge would hit a real allocator,
//  - high-water marks carry across Simulation incarnations (the resil
//    crash -> shrink -> replay contract) unless reset_high_water() is
//    called for per-incarnation peaks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <optional>
#include <string>

#include "src/core/simulation.hpp"
#include "src/obs/memory.hpp"

namespace mrpic::core {
namespace {

SimulationConfig<2> periodic_config(int n = 32) {
  SimulationConfig<2> cfg;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = mrpic::IntVect2(n / 2);
  cfg.shape_order = 2;
  return cfg;
}

void add_thermal_electrons(Simulation<2>& sim, double density = 5e23) {
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(density);
  inj.ppc = mrpic::IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);
}

void add_quarter_patch(Simulation<2>& sim, int n) {
  mr::MRPatch<2>::Config pcfg;
  pcfg.region = mrpic::Box2(mrpic::IntVect2(n / 4, n / 4),
                            mrpic::IntVect2(n / 2 - 1, n / 2 - 1));
  pcfg.ratio = 2;
  pcfg.transition_cells = 2;
  pcfg.pml.npml = 4;
  sim.enable_mr_patch(pcfg);
}

TEST(MemorySmoke, GaugesPublishedAndLedgerConservedExactly) {
  Simulation<2> sim(periodic_config());
  add_thermal_electrons(sim);
  sim.enable_memory_obs();
  sim.init();
  sim.run(5);

  // The probe ran inside its own profiler region every step.
  EXPECT_EQ(sim.profiler().stats("step/memory").count, 5);

  // mem_* gauges are live in the registry and in the per-step records.
  const auto& reg = sim.metrics();
  EXPECT_GT(reg.gauge_value("mem_total_bytes"), 0.0);
  EXPECT_GT(reg.gauge_value("mem_fields_bytes"), 0.0);
  EXPECT_GT(reg.gauge_value("mem_particles_bytes"), 0.0);
  EXPECT_GT(reg.gauge_value("mem_total_high_water_bytes"), 0.0);
  EXPECT_GT(reg.gauge_value("mem_alloc_count"), 0.0);
  ASSERT_EQ(reg.history().size(), 5u);
  EXPECT_GT(reg.history().back().gauges.at("mem_total_bytes"), 0.0);

  // The ledger itself: fields and particles both live in tagged accounts,
  // and the conservation invariant holds to the byte.
  const auto& ledger = obs::memory_ledger();
  EXPECT_GT(ledger.current_prefix("fields.level0"), 0);
  EXPECT_GT(ledger.current_prefix("particles.electrons"), 0);
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
  // The published gauge is the ledger total of the probe instant.
  EXPECT_DOUBLE_EQ(reg.gauge_value("mem_total_bytes"),
                   static_cast<double>(ledger.total_current()));
}

TEST(MemorySmoke, ProbeCadenceFollowsInterval) {
  Simulation<2> sim(periodic_config());
  add_thermal_electrons(sim);
  MemoryObsConfig mcfg;
  mcfg.interval = 3;
  sim.enable_memory_obs(mcfg);
  sim.init();
  sim.run(7);
  // Steps are 0-based: probes at steps 0, 3 and 6.
  EXPECT_EQ(sim.profiler().stats("step/memory").count, 3);
}

TEST(MemorySmoke, MeasuredMrSavingsAgreesWithAnalyticModel) {
  const int n = 32;
  Simulation<2> sim(periodic_config(n));
  add_thermal_electrons(sim);
  add_quarter_patch(sim, n);
  sim.enable_memory_obs();
  sim.init();
  sim.run(3);

  // Only this Simulation is alive, so the ledger's fields/mr/particles
  // prefixes describe exactly this run and the measured factor is the real
  // Fig. 6 affordability number.
  const auto measured = sim.measured_mr_savings();
  const auto analytic = obs::analytic_mr_savings(sim.mr_savings_inputs());
  EXPECT_GT(measured.factor, 1.0);
  EXPECT_GT(analytic.factor, 1.0);
  ASSERT_GT(analytic.actual_bytes, 0.0);
  // The 10% gate: any gap is instrumentation the ledger failed to cover (or
  // double-counted), not model disagreement.
  EXPECT_NEAR(measured.factor / analytic.factor, 1.0, 0.10)
      << "measured " << measured.factor << "x vs analytic " << analytic.factor
      << "x";
  EXPECT_GT(obs::memory_ledger().current_prefix("mr"), 0);
}

TEST(MemorySmoke, RankResidentLanesSumToLedgerTotal) {
  const int n = 32;
  auto cfg = periodic_config(n);
  cfg.nranks = 4;
  Simulation<2> sim(cfg);
  add_thermal_electrons(sim);
  add_quarter_patch(sim, n);
  sim.enable_cluster_obs();
  sim.enable_memory_obs();
  sim.init();
  sim.run(4);

  // Every byte in the ledger is attributed to some rank: the model assigns
  // fields/particles to their owning ranks, the MR surcharge to the patch's
  // host rank, and spreads the unattributed remainder, so the lanes sum to
  // the ledger total exactly.
  const auto& lanes = sim.last_rank_resident_bytes();
  ASSERT_EQ(lanes.size(), 4u);
  const std::int64_t sum = std::accumulate(lanes.begin(), lanes.end(),
                                           std::int64_t(0));
  EXPECT_EQ(sum, obs::memory_ledger().total_current());
  for (const auto b : lanes) { EXPECT_GT(b, 0); }

  // The recorder carries the lane per step and exports the heatmap.
  ASSERT_FALSE(sim.rank_recorder().steps().empty());
  EXPECT_EQ(sim.rank_recorder().steps().back().ranks.at(0).resident_bytes,
            lanes[0]);
  const std::string path = "test_memory_heatmap_tmp.csv";
  ASSERT_TRUE(sim.rank_recorder().write_memory_heatmap_csv(path));
  std::ifstream is(path);
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header,
            "step,rank,boxes,resident_bytes,step_total_bytes,step_max_bytes,"
            "mem_imbalance");
  int rows = 0;
  for (std::string line; std::getline(is, line);) {
    if (!line.empty()) { ++rows; }
  }
  is.close();
  std::remove(path.c_str());
  EXPECT_EQ(rows, 4 * 4); // 4 recorded steps x 4 ranks

  // The OOM prediction runs off the same lanes: a budget below the peak
  // names the first offending (step, rank), a roomy one reports headroom.
  const auto peak = *std::max_element(lanes.begin(), lanes.end());
  const auto oom =
      obs::predict_first_oom(sim.rank_recorder(), 0.5 * static_cast<double>(peak));
  EXPECT_TRUE(oom.predicted);
  EXPECT_GE(oom.peak_bytes, peak);
  const auto fits =
      obs::predict_first_oom(sim.rank_recorder(), 1e12);
  EXPECT_FALSE(fits.predicted);
  EXPECT_GT(fits.headroom, 1.0);
}

TEST(MemorySmoke, BudgetBoundRuleFiresCheckpointThenAbort) {
  // OOM guard-rail drill: a runaway allocation (simulated as a pure ledger
  // surcharge — no real memory is touched) pushes mem_total_bytes over the
  // budget rule; the watchdog must checkpoint-now and abort the run while
  // the "allocation" is still only a ledger number.
  Simulation<2> sim(periodic_config());
  add_thermal_electrons(sim);
  sim.enable_memory_obs();

  health::MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  // 1 GiB budget: orders of magnitude above the real 32^2 footprint, far
  // below the simulated surcharge.
  hcfg.watchdog.bounds.push_back({"mem_total_bytes", 0.0, 1.0 * (1 << 30),
                                  health::Severity::Critical,
                                  {/*checkpoint=*/true, /*abort=*/true}});
  sim.enable_health(hcfg);

  resil::CheckpointPolicyConfig pcfg;
  pcfg.mode = resil::CheckpointMode::Periodic;
  pcfg.interval_steps = 1000000; // only the health action can trigger a write
  int writes = 0;
  sim.set_checkpoint_policy(resil::CheckpointPolicy(pcfg),
                            [&](Simulation<2>&) {
                              ++writes;
                              return true;
                            });

  std::optional<obs::MemCharge> surcharge;
  sim.set_step_callback([&](const obs::StepReport& r) {
    if (r.step == 2 && !surcharge) {
      surcharge.emplace("memtest.oom_surcharge");
      surcharge->update(std::int64_t(4) << 30); // 4 GiB, ledger-only
    }
  });

  sim.init();
  bool aborted = false;
  try {
    sim.run(10);
  } catch (const health::AbortError& e) {
    aborted = true;
    EXPECT_EQ(e.alert().severity, health::Severity::Critical);
    EXPECT_EQ(e.alert().quantity, "mem_total_bytes");
    EXPECT_GT(e.alert().value, 1.0 * (1 << 30));
  }
  ASSERT_TRUE(aborted);
  // Surcharged at the end of step 2, observed by step 3's memory probe and
  // killed by the same step's health evaluation: exactly four steps ran.
  EXPECT_EQ(sim.step_count(), 4);
  EXPECT_EQ(writes, 1); // checkpoint-now fired despite the huge interval
  surcharge.reset();
  EXPECT_EQ(obs::memory_ledger().current("memtest.oom_surcharge"), 0);
}

TEST(MemorySmoke, HighWaterCarriesAcrossIncarnationsUnlessReset) {
  auto& ledger = obs::memory_ledger();
  std::int64_t campaign_peak = 0;
  {
    // Incarnation 1: the "pre-crash" run, deliberately the larger one.
    Simulation<2> big(periodic_config(32));
    add_thermal_electrons(big);
    big.enable_memory_obs();
    big.init();
    big.run(2);
    campaign_peak = ledger.total_high_water();
    EXPECT_GE(campaign_peak, ledger.total_current());
  }
  // The incarnation died; its bytes drained but the mark survives — this is
  // the documented default, so a resil crash -> shrink -> replay campaign
  // reports the worst footprint it ever had.
  EXPECT_EQ(ledger.total_high_water(), campaign_peak);

  {
    // Incarnation 2: the post-shrink replay on a smaller footprint. It never
    // exceeds the old peak, so carry-over keeps the campaign mark.
    Simulation<2> small(periodic_config(16));
    add_thermal_electrons(small);
    small.enable_memory_obs();
    small.init();
    small.run(2);
    EXPECT_EQ(ledger.total_high_water(), campaign_peak);
    EXPECT_LT(ledger.total_current(), campaign_peak);

    // Opt-in per-incarnation peaks: reset restarts the marks from the live
    // occupancy of *this* incarnation.
    ledger.reset_high_water();
    EXPECT_EQ(ledger.total_high_water(), ledger.total_current());
    EXPECT_LT(ledger.total_high_water(), campaign_peak);
    EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
              ledger.total_current());
  }
}

} // namespace
} // namespace mrpic::core
