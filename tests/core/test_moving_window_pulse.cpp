// Regression test: a laser pulse followed by a c-moving window must retain
// its energy over long propagation. This fails spectacularly when the
// longitudinal resolution is too coarse — at lambda/3 the numerical group
// velocity is ~0.68c and the pulse slips out of the back of the window
// (the failure mode found while building the examples); at lambda/16 the
// pulse keeps >60% of its energy over 40 um of travel.

#include <gtest/gtest.h>

#include "src/core/simulation.hpp"

namespace mrpic::core {
namespace {

using namespace mrpic::constants;

// Returns the pulse energy retention over ~110 fs of windowed propagation
// at the given longitudinal cells-per-wavelength.
Real energy_retention(int cells_per_wavelength) {
  const Real lam = 0.8e-6;
  const Real dx = lam / cells_per_wavelength;
  const Real Lx = 24e-6;
  const int nx = static_cast<int>(Lx / dx);

  SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(nx - 1, 39));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(Lx, 8e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 8;
  cfg.max_grid_size = IntVect2(nx, 40);
  Simulation<2> sim(cfg);

  laser::LaserConfig lc;
  lc.a0 = 1.0;
  lc.wavelength = lam;
  lc.waist = 3e-6;
  lc.duration = 8e-15;
  lc.t_peak = 18e-15;
  lc.x_antenna = 1.5e-6;
  lc.center = {4e-6, 0};
  sim.add_laser(lc);
  sim.set_moving_window(0, c, 40e-15);
  sim.init();

  // Forward-pulse energy once emission completes and the backward half has
  // left (~55 fs), then after ~70 fs more of windowed propagation.
  while (sim.time() < 55e-15) { sim.step(); }
  const Real e_ref = sim.fields().field_energy();
  while (sim.time() < 125e-15) { sim.step(); }
  return sim.fields().field_energy() / e_ref;
}

TEST(MovingWindowPulse, WellResolvedPulseSurvives) {
  EXPECT_GT(energy_retention(16), 0.6);
}

TEST(MovingWindowPulse, UnderResolvedPulseFallsBehind) {
  // At ~3 cells/wavelength the numerical group velocity is far below c and
  // the window out-runs the pulse: most of the energy is lost out the back.
  EXPECT_LT(energy_retention(3), 0.25);
}

} // namespace
} // namespace mrpic::core
