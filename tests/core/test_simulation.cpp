#include <gtest/gtest.h>

#include <cmath>

#include "src/core/simulation.hpp"

namespace mrpic::core {
namespace {

using namespace mrpic::constants;

SimulationConfig<2> periodic_config(int n = 32) {
  SimulationConfig<2> cfg;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = mrpic::IntVect2(16);
  cfg.shape_order = 2;
  return cfg;
}

TEST(Simulation, InitLoadsPlasma) {
  Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = mrpic::IntVect2(2, 2);
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  EXPECT_EQ(sim.total_particles(), 32 * 32 * 4);
  EXPECT_GT(sim.dt(), 0.0);
  EXPECT_EQ(sim.step_count(), 0);
  EXPECT_EQ(sim.active_cells(), 32 * 32);
}

TEST(Simulation, UniformPlasmaConservesChargeAndCount) {
  auto cfg = periodic_config();
  Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = mrpic::IntVect2(2, 2);
  inj.temperature_ev = 100.0;
  const int s = sim.add_species(particles::Species::electron(), inj);
  sim.init();
  const auto n0 = sim.total_particles();
  const Real q0 = sim.species_level0(s).total_charge();
  sim.run(10);
  EXPECT_EQ(sim.total_particles(), n0); // periodic: nobody leaves
  EXPECT_NEAR(sim.species_level0(s).total_charge(), q0, std::abs(q0) * 1e-12);
  EXPECT_EQ(sim.step_count(), 10);
  EXPECT_NEAR(sim.time(), 10 * sim.dt(), 1e-20);
  EXPECT_TRUE(std::isfinite(sim.total_energy()));
}

TEST(Simulation, ColdUniformPlasmaStaysQuiet) {
  // A cold, perfectly uniform neutral-background plasma has no dynamics:
  // fields stay (near) zero and no particle moves appreciably.
  Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = mrpic::IntVect2(2, 2);
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  sim.run(20);
  // Uniform charge density -> zero net current -> no field growth.
  EXPECT_LT(sim.fields().E().max_abs(0), 1e3); // V/m, vs ~1e11 in real waves
  EXPECT_LT(sim.fields().E().max_abs(1), 1e3);
}

TEST(Simulation, EnergyConservedInQuietPlasma) {
  Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = mrpic::IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  const Real e0 = sim.total_energy();
  sim.run(50);
  const Real e1 = sim.total_energy();
  EXPECT_NEAR(e1 / e0, 1.0, 0.05); // bounded numerical heating
}

TEST(Simulation, TwoSpeciesNeutralPlasma) {
  Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = mrpic::IntVect2(2, 2);
  const int e = sim.add_species(particles::Species::electron(), inj);
  const int p = sim.add_species(particles::Species::proton(), inj);
  sim.init();
  const Real qtot =
      sim.species_level0(e).total_charge() + sim.species_level0(p).total_charge();
  EXPECT_NEAR(qtot, 0.0, 1e-12 * std::abs(sim.species_level0(e).total_charge()));
  sim.run(5);
  EXPECT_EQ(sim.num_species(), 2);
  EXPECT_EQ(sim.num_particles(e), sim.num_particles(p));
}

TEST(Simulation, MovingWindowInjectsAndDrops) {
  auto cfg = periodic_config(32);
  cfg.periodic = {false, true};
  Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24);
  inj.ppc = mrpic::IntVect2(1, 1);
  sim.add_species(particles::Species::electron(), inj);
  sim.set_moving_window(0, c);
  sim.init();
  const auto n0 = sim.total_particles();
  const Real lo0 = sim.geom().prob_lo()[0];
  sim.run(40);
  EXPECT_GT(sim.geom().prob_lo()[0], lo0); // the window moved
  // Fresh plasma replaces dropped plasma: the count stays at the fill level.
  EXPECT_NEAR(static_cast<double>(sim.total_particles()), static_cast<double>(n0),
              0.05 * n0);
}

TEST(Simulation, DomainPmlAbsorbsLaser) {
  auto cfg = periodic_config(48);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 10;
  Simulation<2> sim(cfg);
  laser::LaserConfig lc;
  lc.a0 = 0.5;
  lc.wavelength = 0.8e-6;
  lc.waist = 1.2e-6;
  lc.duration = 4e-15;
  lc.t_peak = 10e-15;
  lc.x_antenna = 1.0e-6;
  lc.center = {2.4e-6, 0};
  sim.add_laser(lc);
  sim.init();
  // Run while the laser is emitted.
  Real peak_energy = 0;
  while (sim.time() < 20e-15) {
    sim.step();
    peak_energy = std::max(peak_energy, sim.fields().field_energy());
  }
  ASSERT_GT(peak_energy, 0.0);
  // Keep running: the pulse exits through the PML and the energy collapses.
  while (sim.time() < 70e-15) { sim.step(); }
  EXPECT_LT(sim.fields().field_energy() / peak_energy, 0.05);
}

TEST(Simulation, DynamicLoadBalancingRebalances) {
  auto cfg = periodic_config(32);
  cfg.max_grid_size = mrpic::IntVect2(8); // 16 boxes: room to balance
  cfg.dynamic_lb = true;
  cfg.lb_interval = 2;
  // SFC with cell-count costs is the paper's (cost-blind) default: the
  // clustered hot boxes land together, forcing a cost-aware remap.
  cfg.lb.strategy = dist::Strategy::SpaceFillingCurve;
  cfg.lb.imbalance_threshold = 1.05;
  cfg.nranks = 4;
  Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  // All plasma in one quadrant: heavily imbalanced.
  inj.density = plasma::slab<2>(1e24, 0.0, 0.8e-6);
  inj.ppc = mrpic::IntVect2(3, 3);
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  sim.run(6);
  EXPECT_GE(sim.load_balancer().num_rebalances(), 1);
  // The new mapping balances measured costs well.
  EXPECT_LT(sim.dist_map().imbalance(sim.load_balancer().costs()), 1.5);
}

TEST(Simulation, ProfilerRecordsStages) {
  Simulation<2> sim(periodic_config());
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e23);
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  sim.run(3);
  const auto flat = sim.profiler().flat_totals();
  EXPECT_EQ(flat.at("step").count, 3);
  EXPECT_EQ(flat.at("particles").count, 3);
  EXPECT_EQ(flat.at("field_solve").count, 3);
  EXPECT_GT(flat.at("step").inclusive_s, 0.0);
}

} // namespace
} // namespace mrpic::core
