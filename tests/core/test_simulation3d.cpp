// End-to-end 3D PIC runs (the paper's production dimensionality; Fig. 7's
// headline point is that 2D gets late-time physics wrong, so the 3D path
// must be first-class). Small grids keep these fast.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/simulation.hpp"
#include "src/diag/spectrum.hpp"

namespace mrpic::core {
namespace {

using namespace mrpic::constants;

SimulationConfig<3> periodic_config(int n = 12) {
  SimulationConfig<3> cfg;
  cfg.domain = Box3(IntVect3(0, 0, 0), IntVect3(n - 1, n - 1, n - 1));
  cfg.prob_lo = RealVect3(0, 0, 0);
  cfg.prob_hi = RealVect3(n * 1e-7, n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true, true};
  cfg.max_grid_size = IntVect3(n);
  cfg.shape_order = 2;
  return cfg;
}

TEST(Simulation3D, UniformPlasmaConservesChargeAndCount) {
  Simulation<3> sim(periodic_config());
  plasma::InjectorConfig<3> inj;
  inj.density = plasma::uniform<3>(1e24);
  inj.ppc = IntVect3(2, 1, 1);
  inj.temperature_ev = 100.0;
  const int s = sim.add_species(particles::Species::electron(), inj);
  sim.init();
  EXPECT_EQ(sim.total_particles(), 12 * 12 * 12 * 2);
  const Real q0 = sim.species_level0(s).total_charge();
  sim.run(8);
  EXPECT_EQ(sim.total_particles(), 12 * 12 * 12 * 2);
  EXPECT_NEAR(sim.species_level0(s).total_charge(), q0, std::abs(q0) * 1e-12);
  EXPECT_TRUE(std::isfinite(sim.total_energy()));
}

TEST(Simulation3D, ColdPlasmaStaysQuiet) {
  Simulation<3> sim(periodic_config());
  plasma::InjectorConfig<3> inj;
  inj.density = plasma::uniform<3>(1e24);
  inj.ppc = IntVect3(1, 1, 1);
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  sim.run(10);
  EXPECT_LT(sim.fields().E().max_abs(0), 1e3);
  EXPECT_LT(sim.fields().E().max_abs(2), 1e3);
}

TEST(Simulation3D, LangmuirFrequency) {
  // The plasma-oscillation check in full 3D.
  const Real n0 = 2e24;
  const Real omega_p = std::sqrt(n0 * q_e * q_e / (eps0 * m_e));
  SimulationConfig<3> cfg;
  const int nx = 16;
  const Real L = 8e-6;
  cfg.domain = Box3(IntVect3(0, 0, 0), IntVect3(nx - 1, 3, 3));
  cfg.prob_lo = RealVect3(0, 0, 0);
  cfg.prob_hi = RealVect3(L, L / nx * 4, L / nx * 4);
  cfg.periodic = {true, true, true};
  cfg.max_grid_size = IntVect3(16);
  cfg.shape_order = 2;
  Simulation<3> sim(cfg);
  plasma::InjectorConfig<3> inj;
  inj.density = plasma::uniform<3>(n0);
  inj.ppc = IntVect3(2, 2, 2);
  const int s = sim.add_species(particles::Species::electron(), inj);
  sim.init();

  auto& pc = sim.species_level0(s);
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    auto& tile = pc.tile(ti);
    for (std::size_t p = 0; p < tile.size(); ++p) {
      tile.u[0][p] = 1e-3 * c * std::sin(2 * pi * tile.x[0][p] / L);
    }
  }
  std::vector<Real> amps, times;
  while (sim.time() < 2.2 * (2 * pi / omega_p)) {
    sim.step();
    Real a = 0;
    const auto e = sim.fields().E().const_array(0);
    for (int i = 0; i < nx; ++i) {
      const Real x = sim.geom().node_pos(i, 0) + 0.5 * sim.geom().cell_size(0);
      a += e(i, 1, 1, 0) * std::sin(2 * pi * x / L);
    }
    amps.push_back(a);
    times.push_back(sim.time());
  }
  std::vector<Real> crossings;
  for (std::size_t i = 1; i < amps.size(); ++i) {
    if ((amps[i - 1] < 0) != (amps[i] < 0)) {
      const Real f = amps[i - 1] / (amps[i - 1] - amps[i]);
      crossings.push_back(times[i - 1] + f * (times[i] - times[i - 1]));
    }
  }
  ASSERT_GE(crossings.size(), 3u);
  const Real half_period = (crossings.back() - crossings.front()) / (crossings.size() - 1);
  EXPECT_NEAR(pi / half_period / omega_p, 1.0, 0.08);
}

TEST(Simulation3D, MRPatchLifecycle) {
  SimulationConfig<3> cfg = periodic_config(16);
  cfg.max_grid_size = IntVect3(16);
  Simulation<3> sim(cfg);
  plasma::InjectorConfig<3> inj;
  inj.density = plasma::uniform<3>(1e24);
  inj.ppc = IntVect3(1, 1, 1);
  sim.add_species(particles::Species::electron(), inj);
  mr::MRPatch<3>::Config pcfg;
  pcfg.region = Box3(IntVect3(4, 4, 4), IntVect3(11, 11, 11));
  pcfg.transition_cells = 1;
  pcfg.pml.npml = 4;
  sim.enable_mr_patch(pcfg);
  sim.init();
  const auto n0 = sim.total_particles();
  EXPECT_GT(sim.species_patch(0).total_particles(), 0);
  sim.run(4);
  EXPECT_EQ(sim.total_particles(), n0);
  EXPECT_TRUE(std::isfinite(sim.patch()->fine().E().max_abs(2)));
  sim.patch()->remove();
  sim.run(2);
  EXPECT_EQ(sim.species_patch(0).total_particles(), 0);
  EXPECT_EQ(sim.total_particles(), n0);
}

TEST(Simulation3D, LaserInjectsEnergyThroughPml) {
  SimulationConfig<3> cfg;
  cfg.domain = Box3(IntVect3(0, 0, 0), IntVect3(31, 15, 15));
  cfg.prob_lo = RealVect3(0, 0, 0);
  cfg.prob_hi = RealVect3(8e-6, 4e-6, 4e-6);
  cfg.periodic = {false, false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 6;
  cfg.max_grid_size = IntVect3(32, 16, 16);
  Simulation<3> sim(cfg);
  laser::LaserConfig lc;
  lc.a0 = 0.5;
  lc.waist = 1.2e-6;
  lc.duration = 4e-15;
  lc.t_peak = 8e-15;
  lc.x_antenna = 1e-6;
  lc.center = {2e-6, 2e-6};
  sim.add_laser(lc);
  sim.init();
  Real peak = 0;
  while (sim.time() < 16e-15) {
    sim.step();
    peak = std::max(peak, sim.fields().field_energy());
  }
  EXPECT_GT(peak, 0.0);
  while (sim.time() < 50e-15) { sim.step(); }
  EXPECT_LT(sim.fields().field_energy(), peak); // pulse left through the PML
}

} // namespace
} // namespace mrpic::core
