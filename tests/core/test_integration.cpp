// Physics integration tests: end-to-end PIC runs validated against analytic
// plasma physics (Langmuir oscillation) and cross-validated MR vs no-MR,
// the same validation strategy the paper uses for Fig. 7.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/simulation.hpp"

namespace mrpic::core {
namespace {

using namespace mrpic::constants;

TEST(Integration, LangmuirOscillationFrequency) {
  // Cold uniform plasma with a small sinusoidal velocity perturbation
  // oscillates at the plasma frequency omega_p = sqrt(n e^2 / (eps0 m)).
  const Real n0 = 1e24; // m^-3
  const Real omega_p = std::sqrt(n0 * q_e * q_e / (eps0 * m_e));

  SimulationConfig<2> cfg;
  const int n = 32;
  const Real L = 16e-6;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, 7));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(L, L / n * 8);
  cfg.periodic = {true, true};
  cfg.max_grid_size = mrpic::IntVect2(32);
  cfg.shape_order = 3;
  Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(n0);
  inj.ppc = mrpic::IntVect2(4, 4);
  const int s = sim.add_species(particles::Species::electron(), inj);
  sim.init();

  // Velocity perturbation v_x = v0 sin(2 pi x / L).
  const Real v0 = 1e-3 * c;
  auto& pc = sim.species_level0(s);
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    auto& tile = pc.tile(ti);
    for (std::size_t p = 0; p < tile.size(); ++p) {
      tile.u[0][p] = v0 * std::sin(2 * pi * tile.x[0][p] / L);
    }
  }

  // Track the mode amplitude a(t) = sum Ex sin(2 pi x / L) and count its
  // zero crossings over ~2.5 plasma periods.
  const Real t_end = 2.5 * (2 * pi / omega_p);
  std::vector<Real> amps;
  std::vector<Real> times;
  while (sim.time() < t_end) {
    sim.step();
    Real a = 0;
    const auto& E = sim.fields().E();
    for (int m = 0; m < E.num_fabs(); ++m) {
      const auto e = E.const_array(m);
      const auto& vb = E.valid_box(m);
      for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
        for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
          const Real x = sim.geom().node_pos(i, 0) + 0.5 * sim.geom().cell_size(0);
          a += e(i, j, 0, 0) * std::sin(2 * pi * x / L);
        }
      }
    }
    amps.push_back(a);
    times.push_back(sim.time());
  }
  ASSERT_GT(amps.size(), 50u);

  // Measure the oscillation period from zero crossings.
  std::vector<Real> crossings;
  for (std::size_t i = 1; i < amps.size(); ++i) {
    if ((amps[i - 1] < 0) != (amps[i] < 0)) {
      const Real f = amps[i - 1] / (amps[i - 1] - amps[i]);
      crossings.push_back(times[i - 1] + f * (times[i] - times[i - 1]));
    }
  }
  ASSERT_GE(crossings.size(), 4u) << "no oscillation detected";
  const Real half_period = (crossings.back() - crossings.front()) / (crossings.size() - 1);
  const Real omega_measured = pi / half_period;
  EXPECT_NEAR(omega_measured / omega_p, 1.0, 0.06);
}

TEST(Integration, LaserPushesPlasmaElectrons) {
  // A weak laser through underdense plasma drives transverse quiver and a
  // wakefield; electrons must gain energy while charge is conserved.
  SimulationConfig<2> cfg;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(95, 47));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(24e-6, 12e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 8;
  cfg.shape_order = 3;
  cfg.max_grid_size = mrpic::IntVect2(48);
  Simulation<2> sim(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::gas_jet<2>(5e24, 6e-6, 24e-6, 2e-6);
  inj.ppc = mrpic::IntVect2(1, 1);
  const int s = sim.add_species(particles::Species::electron(), inj);

  laser::LaserConfig lc;
  lc.a0 = 1.0;
  lc.wavelength = 0.8e-6;
  lc.waist = 3e-6;
  lc.duration = 8e-15;
  lc.t_peak = 16e-15;
  lc.x_antenna = 2e-6;
  lc.center = {6e-6, 0};
  sim.add_laser(lc);
  sim.init();

  const Real ke0 = sim.species_level0(s).kinetic_energy();
  while (sim.time() < 60e-15) { sim.step(); }
  const Real ke1 = sim.species_level0(s).kinetic_energy();
  EXPECT_GT(ke1, ke0 + 1e-15); // electrons picked up energy from the laser
  EXPECT_TRUE(std::isfinite(sim.fields().field_energy()));
  EXPECT_TRUE(std::isfinite(ke1));
}

TEST(Integration, MRPatchAgreesWithNoMRInQuietPlasma) {
  // Uniform quiet plasma covered partially by an MR patch: the patch
  // machinery must not disturb the (trivial) physics — the fields stay
  // quiet, particle counts are preserved across the level migration, and
  // removing the patch returns everything to level 0.
  auto make = [](bool with_mr) {
    SimulationConfig<2> cfg;
    cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(47, 31));
    cfg.prob_lo = mrpic::RealVect2(0, 0);
    cfg.prob_hi = mrpic::RealVect2(48e-7, 32e-7);
    cfg.periodic = {true, true};
    cfg.max_grid_size = mrpic::IntVect2(24, 16);
    cfg.shape_order = 2;
    auto sim = std::make_unique<Simulation<2>>(cfg);
    plasma::InjectorConfig<2> inj;
    inj.density = plasma::uniform<2>(1e24);
    inj.ppc = mrpic::IntVect2(2, 2);
    sim->add_species(particles::Species::electron(), inj);
    if (with_mr) {
      mr::MRPatch<2>::Config pcfg;
      pcfg.region = mrpic::Box2(mrpic::IntVect2(12, 8), mrpic::IntVect2(35, 23));
      pcfg.transition_cells = 2;
      pcfg.pml.npml = 6;
      sim->enable_mr_patch(pcfg);
    }
    sim->init();
    return sim;
  };

  auto sim_mr = make(true);
  auto sim_ref = make(false);
  const auto n_total = sim_ref->total_particles();
  EXPECT_EQ(sim_mr->total_particles(), n_total);
  // Some particles live on the patch level.
  EXPECT_GT(sim_mr->species_patch(0).total_particles(), 0);

  for (int st = 0; st < 10; ++st) {
    sim_mr->step();
    sim_ref->step();
  }
  EXPECT_EQ(sim_mr->total_particles(), n_total);
  // Quiet plasma stays quiet in both.
  EXPECT_LT(sim_mr->fields().E().max_abs(0), 1e4);
  EXPECT_LT(sim_ref->fields().E().max_abs(0), 1e4);
  EXPECT_LT(sim_mr->patch()->fine().E().max_abs(0), 1e4);

  // Remove the patch: particles hand back to level 0, nothing lost.
  sim_mr->patch()->remove();
  sim_mr->step();
  EXPECT_EQ(sim_mr->species_patch(0).total_particles(), 0);
  EXPECT_EQ(sim_mr->total_particles(), n_total);
}

TEST(Integration, MRLaserCrossingPatchMatchesNoMR) {
  // A laser pulse crosses a vacuum MR patch: the auxiliary field inside the
  // patch must track the no-MR solution (external waves enter MR patches at
  // parent resolution via the substitution, see Sec. V.B).
  auto make = [](bool with_mr) {
    SimulationConfig<2> cfg;
    cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(95, 31));
    cfg.prob_lo = mrpic::RealVect2(0, 0);
    cfg.prob_hi = mrpic::RealVect2(24e-6, 8e-6);
    cfg.periodic = {false, true};
    cfg.use_pml = true;
    cfg.pml.npml = 8;
    // Same dt for both runs: numerical dispersion of the carrier is
    // dt-dependent, so comparing runs at different dt would measure the
    // FDTD phase error instead of the MR machinery. Use the MR (fine CFL)
    // step in both.
    const mrpic::Geometry<2> g(cfg.domain, cfg.prob_lo, cfg.prob_hi, cfg.periodic);
    cfg.forced_dt = fields::cfl_dt(g.refined(2), cfg.cfl);
    auto sim = std::make_unique<Simulation<2>>(cfg);
    laser::LaserConfig lc;
    lc.a0 = 0.2;
    lc.waist = 2.5e-6;
    lc.duration = 6e-15;
    lc.t_peak = 12e-15;
    lc.x_antenna = 1.5e-6;
    lc.center = {4e-6, 0};
    sim->add_laser(lc);
    if (with_mr) {
      mr::MRPatch<2>::Config pcfg;
      pcfg.region = mrpic::Box2(mrpic::IntVect2(40, 4), mrpic::IntVect2(71, 27));
      pcfg.pml.npml = 8;
      sim->enable_mr_patch(pcfg);
    }
    sim->init();
    return sim;
  };
  auto sim_mr = make(true);
  auto sim_ref = make(false);
  ASSERT_DOUBLE_EQ(sim_mr->dt(), sim_ref->dt());
  // Run until the pulse is inside the patch region (x ~ 10-18 um).
  const Real t_end = 55e-15;
  while (sim_mr->time() < t_end) {
    sim_mr->step();
    sim_ref->step();
  }
  // Parent fields agree closely (patch has no sources: it must not react).
  const Real ref_max = sim_ref->fields().E().max_abs(2);
  ASSERT_GT(ref_max, 1e9);
  Real worst = 0;
  for (int m = 0; m < sim_ref->fields().E().num_fabs(); ++m) {
    const auto er = sim_ref->fields().E().const_array(m);
    const auto em = sim_mr->fields().E().const_array(m);
    const auto& vb = sim_ref->fields().E().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        worst = std::max(worst, std::abs(er(i, j, 0, 2) - em(i, j, 0, 2)));
      }
    }
  }
  EXPECT_LT(worst / ref_max, 5e-2);
}

TEST(Integration, LangmuirOscillationWithPsatdSolver) {
  // The same plasma-frequency check with the spectral Maxwell solver
  // (cfg.maxwell = PSATD): the full PIC pipeline must compose with the
  // dispersion-free field solve (paper Table I's last row).
  const Real n0 = 1e24;
  const Real omega_p = std::sqrt(n0 * q_e * q_e / (eps0 * m_e));

  SimulationConfig<2> cfg;
  const int n = 32;
  const Real L = 16e-6;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, 7));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(L, L / n * 8);
  cfg.periodic = {true, true};
  cfg.max_grid_size = mrpic::IntVect2(n); // single box, as PSATD requires
  cfg.maxwell = MaxwellSolver::PSATD;
  cfg.shape_order = 3;
  Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(n0);
  inj.ppc = mrpic::IntVect2(4, 4);
  const int s = sim.add_species(particles::Species::electron(), inj);
  sim.init();

  const Real v0 = 1e-3 * c;
  auto& pc = sim.species_level0(s);
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    auto& tile = pc.tile(ti);
    for (std::size_t p = 0; p < tile.size(); ++p) {
      tile.u[0][p] = v0 * std::sin(2 * pi * tile.x[0][p] / L);
    }
  }

  const Real t_end = 2.5 * (2 * pi / omega_p);
  std::vector<Real> amps, times;
  while (sim.time() < t_end) {
    sim.step();
    Real a = 0;
    const auto& E = sim.fields().E();
    const auto e = E.const_array(0);
    for (int j = 0; j < 8; ++j) {
      for (int i = 0; i < n; ++i) {
        const Real x = sim.geom().node_pos(i, 0) + 0.5 * sim.geom().cell_size(0);
        a += e(i, j, 0, 0) * std::sin(2 * pi * x / L);
      }
    }
    amps.push_back(a);
    times.push_back(sim.time());
  }
  std::vector<Real> crossings;
  for (std::size_t i = 1; i < amps.size(); ++i) {
    if ((amps[i - 1] < 0) != (amps[i] < 0)) {
      const Real f = amps[i - 1] / (amps[i - 1] - amps[i]);
      crossings.push_back(times[i - 1] + f * (times[i] - times[i - 1]));
    }
  }
  ASSERT_GE(crossings.size(), 4u) << "no oscillation detected under PSATD";
  const Real half_period = (crossings.back() - crossings.front()) / (crossings.size() - 1);
  EXPECT_NEAR(pi / half_period / omega_p, 1.0, 0.06);
}

} // namespace
} // namespace mrpic::core
