#include <gtest/gtest.h>

#include "src/amr/box.hpp"

namespace mrpic {
namespace {

TEST(IntVect, ConstructionAndArithmetic) {
  IntVect3 a(1, 2, 3);
  IntVect3 b(4);
  EXPECT_EQ(b, IntVect3(4, 4, 4));
  EXPECT_EQ(a + b, IntVect3(5, 6, 7));
  EXPECT_EQ(b - a, IntVect3(3, 2, 1));
  EXPECT_EQ(a * 2, IntVect3(2, 4, 6));
  EXPECT_EQ(-a, IntVect3(-1, -2, -3));
  EXPECT_EQ(a.product(), 6);
  EXPECT_EQ(a.min_component(), 1);
  EXPECT_EQ(a.max_component(), 3);
}

TEST(IntVect, Comparisons) {
  IntVect2 a(1, 2), b(2, 3), c(2, 1);
  EXPECT_TRUE(a.all_lt(b));
  EXPECT_TRUE(a.all_le(b));
  EXPECT_FALSE(a.all_lt(c)); // mixed ordering
  EXPECT_FALSE(c.all_le(a));
  EXPECT_EQ(IntVect2::component_min(a, c), IntVect2(1, 1));
  EXPECT_EQ(IntVect2::component_max(a, c), IntVect2(2, 2));
}

TEST(IntVect, CoarsenRoundsTowardMinusInfinity) {
  EXPECT_EQ(IntVect2(5, -5).coarsened(IntVect2(2)), IntVect2(2, -3));
  EXPECT_EQ(IntVect2(4, -4).coarsened(IntVect2(2)), IntVect2(2, -2));
  EXPECT_EQ(IntVect2(-1, -2).coarsened(IntVect2(2)), IntVect2(-1, -1));
}

TEST(Box, BasicProperties) {
  Box3 b(IntVect3(0, 0, 0), IntVect3(7, 15, 31));
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.size(), IntVect3(8, 16, 32));
  EXPECT_EQ(b.num_cells(), 8 * 16 * 32);
  EXPECT_TRUE(b.contains(IntVect3(7, 15, 31)));
  EXPECT_FALSE(b.contains(IntVect3(8, 0, 0)));

  Box3 empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.num_cells(), 0);
}

TEST(Box, Intersection) {
  Box2 a(IntVect2(0, 0), IntVect2(9, 9));
  Box2 b(IntVect2(5, 5), IntVect2(14, 14));
  Box2 i = a & b;
  EXPECT_EQ(i, Box2(IntVect2(5, 5), IntVect2(9, 9)));
  EXPECT_TRUE(a.intersects(b));

  Box2 c(IntVect2(10, 0), IntVect2(19, 9));
  EXPECT_TRUE((a & c).empty());
  EXPECT_FALSE(a.intersects(c));
}

TEST(Box, GrowShiftBounding) {
  Box2 a(IntVect2(2, 2), IntVect2(5, 5));
  EXPECT_EQ(a.grown(1), Box2(IntVect2(1, 1), IntVect2(6, 6)));
  EXPECT_EQ(a.grown(-1), Box2(IntVect2(3, 3), IntVect2(4, 4)));
  EXPECT_EQ(a.shifted(IntVect2(10, 0)), Box2(IntVect2(12, 2), IntVect2(15, 5)));
  Box2 b(IntVect2(8, 8), IntVect2(9, 9));
  EXPECT_EQ(bounding(a, b), Box2(IntVect2(2, 2), IntVect2(9, 9)));
}

TEST(Box, CoarsenRefineRoundTrip) {
  Box3 fine(IntVect3(0, 0, 0), IntVect3(15, 15, 15));
  Box3 coarse = fine.coarsened(2);
  EXPECT_EQ(coarse, Box3(IntVect3(0, 0, 0), IntVect3(7, 7, 7)));
  EXPECT_EQ(coarse.refined(2), fine);

  // Non-aligned box: coarsen covers, refine of coarsened contains original.
  Box2 odd(IntVect2(1, 3), IntVect2(6, 8));
  Box2 c = odd.coarsened(2);
  EXPECT_TRUE(c.refined(2).contains(odd));
}

TEST(Box, IndexIsFortranOrder) {
  Box2 b(IntVect2(2, 3), IntVect2(5, 7));
  EXPECT_EQ(b.index(IntVect2(2, 3)), 0);
  EXPECT_EQ(b.index(IntVect2(3, 3)), 1);
  EXPECT_EQ(b.index(IntVect2(2, 4)), 4); // one j-row = 4 cells
  EXPECT_EQ(b.index(b.hi()), b.num_cells() - 1);
}

TEST(Box, ChopRespectsMaxSizeAndCoversBox) {
  Box3 b(IntVect3(0, 0, 0), IntVect3(99, 49, 19));
  auto pieces = b.chop(IntVect3(32, 32, 32));
  std::int64_t total = 0;
  for (const auto& p : pieces) {
    EXPECT_LE(p.size().max_component(), 32);
    EXPECT_TRUE(b.contains(p));
    total += p.num_cells();
  }
  EXPECT_EQ(total, b.num_cells());
  // 100/32 -> 4 chunks, 50/32 -> 2, 20/32 -> 1.
  EXPECT_EQ(pieces.size(), 4u * 2u * 1u);
}

TEST(Box, ChopEvenSplit) {
  Box2 b(IntVect2(0, 0), IntVect2(63, 63));
  auto pieces = b.chop(IntVect2(32, 32));
  ASSERT_EQ(pieces.size(), 4u);
  for (const auto& p : pieces) { EXPECT_EQ(p.num_cells(), 32 * 32); }
}

} // namespace
} // namespace mrpic
