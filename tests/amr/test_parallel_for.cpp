#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/amr/parallel_for.hpp"

namespace mrpic {
namespace {

TEST(ParallelFor, Linear) {
  std::vector<int> hits(100, 0);
  parallel_for(static_cast<std::int64_t>(100), [&](std::int64_t i) { hits[i] += 1; });
  for (int h : hits) { EXPECT_EQ(h, 1); }
}

TEST(ParallelFor, Box2CoversEveryCellOnce) {
  const Box2 bx(IntVect2(-2, 3), IntVect2(5, 9));
  std::vector<int> hits(bx.num_cells(), 0);
  parallel_for(bx, [&](int i, int j) { hits[bx.index(IntVect2(i, j))] += 1; });
  for (int h : hits) { EXPECT_EQ(h, 1); }
}

TEST(ParallelFor, Box3CoversEveryCellOnce) {
  const Box3 bx(IntVect3(0, -1, 2), IntVect3(4, 3, 6));
  std::vector<std::atomic<int>> hits(bx.num_cells());
  parallel_for(bx, [&](int i, int j, int k) { hits[bx.index(IntVect3(i, j, k))] += 1; });
  for (const auto& h : hits) { EXPECT_EQ(h.load(), 1); }
}

TEST(ParallelFor, EmptyBoxIsNoop) {
  int count = 0;
  parallel_for(Box2(), [&](int, int) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(SerialFor, MatchesParallelCoverage) {
  const Box2 bx(IntVect2(0, 0), IntVect2(7, 7));
  int serial_sum = 0, expected = 0;
  serial_for(bx, [&](int i, int j) { serial_sum += i * 100 + j; });
  for (int j = 0; j <= 7; ++j) {
    for (int i = 0; i <= 7; ++i) { expected += i * 100 + j; }
  }
  EXPECT_EQ(serial_sum, expected);
}

TEST(ParallelFor, NumThreadsPositive) { EXPECT_GE(num_threads(), 1); }

} // namespace
} // namespace mrpic
