#include <gtest/gtest.h>

#include "src/amr/box_array.hpp"

namespace mrpic {
namespace {

TEST(BoxArray, DecomposeCoversDomainDisjointly) {
  const Box3 domain(IntVect3(0, 0, 0), IntVect3(63, 63, 63));
  const auto ba = BoxArray<3>::decompose(domain, 32);
  EXPECT_EQ(ba.size(), 8);
  EXPECT_TRUE(ba.is_disjoint());
  EXPECT_EQ(ba.total_cells(), domain.num_cells());
  EXPECT_EQ(ba.minimal_box(), domain);
}

TEST(BoxArray, ContainsLocatesOwningBox) {
  const Box2 domain(IntVect2(0, 0), IntVect2(31, 31));
  const auto ba = BoxArray<2>::decompose(domain, 16);
  int which = -1;
  EXPECT_TRUE(ba.contains(IntVect2(20, 5), &which));
  EXPECT_TRUE(ba[which].contains(IntVect2(20, 5)));
  EXPECT_FALSE(ba.contains(IntVect2(32, 0)));
}

TEST(BoxArray, IntersectingFindsNeighbors) {
  const Box2 domain(IntVect2(0, 0), IntVect2(31, 31));
  const auto ba = BoxArray<2>::decompose(domain, 16); // 2x2 boxes
  // A region straddling the center intersects all four.
  const auto hits = ba.intersecting(Box2(IntVect2(14, 14), IntVect2(17, 17)));
  EXPECT_EQ(hits.size(), 4u);
}

TEST(BoxArray, CoarsenRefineShift) {
  const Box2 domain(IntVect2(0, 0), IntVect2(31, 31));
  const auto ba = BoxArray<2>::decompose(domain, 16);
  const auto fine = ba.refined(IntVect2(2));
  EXPECT_EQ(fine.total_cells(), 4 * ba.total_cells());
  EXPECT_EQ(fine.coarsened(IntVect2(2)), ba);
  const auto shifted = ba.shifted(IntVect2(5, 0));
  EXPECT_EQ(shifted.minimal_box(), domain.shifted(IntVect2(5, 0)));
}

TEST(BoxArray, UnevenDomainStillCovered) {
  const Box3 domain(IntVect3(0, 0, 0), IntVect3(99, 31, 17));
  const auto ba = BoxArray<3>::decompose(domain, IntVect3(32, 32, 32));
  EXPECT_TRUE(ba.is_disjoint());
  EXPECT_EQ(ba.total_cells(), domain.num_cells());
}

} // namespace
} // namespace mrpic
