#include <gtest/gtest.h>

#include "src/amr/geometry.hpp"

namespace mrpic {
namespace {

Geometry<2> make_geom() {
  return Geometry<2>(Box2(IntVect2(0, 0), IntVect2(9, 19)), RealVect2(0.0, -1.0),
                     RealVect2(1.0, 1.0), {true, false});
}

TEST(Geometry, CellSizesAndPositions) {
  const auto g = make_geom();
  EXPECT_DOUBLE_EQ(g.cell_size(0), 0.1);
  EXPECT_DOUBLE_EQ(g.cell_size(1), 0.1);
  EXPECT_DOUBLE_EQ(g.node_pos(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.node_pos(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.cell_center(0, 1), -0.95);
}

TEST(Geometry, CellIndex) {
  const auto g = make_geom();
  EXPECT_EQ(g.cell_index(0.05, 0), 0);
  EXPECT_EQ(g.cell_index(0.999, 0), 9);
  EXPECT_EQ(g.cell_index(-0.999, 1), 0);
  EXPECT_EQ(g.cell_index(-0.01, 0), -1); // outside low end
}

TEST(Geometry, Periodicity) {
  const auto g = make_geom();
  EXPECT_TRUE(g.is_periodic(0));
  EXPECT_FALSE(g.is_periodic(1));
  EXPECT_TRUE(g.any_periodic());
}

TEST(Geometry, RefinedPreservesPhysicalExtent) {
  const auto g = make_geom();
  const auto f = g.refined(2);
  EXPECT_EQ(f.domain().size(), IntVect2(20, 40));
  EXPECT_DOUBLE_EQ(f.cell_size(0), 0.05);
  EXPECT_DOUBLE_EQ(f.prob_lo()[1], g.prob_lo()[1]);
  EXPECT_DOUBLE_EQ(f.prob_hi()[0], g.prob_hi()[0]);
}

TEST(Geometry, ShiftPhysicalMovesAnchorNotIndexSpace) {
  auto g = make_geom();
  const auto domain = g.domain();
  g.shift_physical(0, 3);
  EXPECT_EQ(g.domain(), domain);
  EXPECT_DOUBLE_EQ(g.prob_lo()[0], 0.3);
  EXPECT_DOUBLE_EQ(g.prob_hi()[0], 1.3);
  // The same index now maps 0.3 further right.
  EXPECT_DOUBLE_EQ(g.node_pos(0, 0), 0.3);
}

} // namespace
} // namespace mrpic
