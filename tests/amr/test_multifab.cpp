#include <gtest/gtest.h>

#include "src/amr/multifab.hpp"

namespace mrpic {
namespace {

Geometry<2> geom_periodic(bool px, bool py) {
  return Geometry<2>(Box2(IntVect2(0, 0), IntVect2(31, 31)), RealVect2(0, 0),
                     RealVect2(1, 1), {px, py});
}

// Fill each fab's valid region with a function of the global index so that
// ghost correctness can be checked against the analytic value.
void fill_linear(MultiFab<2>& mf) {
  for (int m = 0; m < mf.num_fabs(); ++m) {
    auto& f = mf.fab(m);
    f.for_each_cell(mf.valid_box(m), [&](const IntVect2& p) {
      for (int n = 0; n < mf.num_comp(); ++n) {
        f(p, n) = 1000.0 * n + p[0] + 100.0 * p[1];
      }
    });
  }
}

TEST(MultiFab, FillBoundaryInterior) {
  const auto g = geom_periodic(false, false);
  const auto ba = BoxArray<2>::decompose(g.domain(), 16);
  MultiFab<2> mf(ba, 2, 2);
  fill_linear(mf);
  mf.fill_boundary(g);

  // Every ghost cell inside the domain must hold the owner's value.
  for (int m = 0; m < mf.num_fabs(); ++m) {
    const auto& f = mf.fab(m);
    const auto vb = mf.valid_box(m);
    f.for_each_cell(mf.grown_box(m), [&](const IntVect2& p) {
      if (vb.contains(p) || !g.domain().contains(p)) { return; }
      for (int n = 0; n < 2; ++n) {
        EXPECT_DOUBLE_EQ(f(p, n), 1000.0 * n + p[0] + 100.0 * p[1])
            << "fab " << m << " ghost " << p << " comp " << n;
      }
    });
  }
}

TEST(MultiFab, FillBoundaryPeriodicWrap) {
  const auto g = geom_periodic(true, true);
  const auto ba = BoxArray<2>::decompose(g.domain(), 16);
  MultiFab<2> mf(ba, 1, 2);
  fill_linear(mf);
  mf.fill_boundary(g);

  // Ghosts beyond the domain must hold the periodic image's value.
  const int L = 32;
  for (int m = 0; m < mf.num_fabs(); ++m) {
    const auto& f = mf.fab(m);
    const auto vb = mf.valid_box(m);
    f.for_each_cell(mf.grown_box(m), [&](const IntVect2& p) {
      if (vb.contains(p)) { return; }
      const int pi = ((p[0] % L) + L) % L;
      const int pj = ((p[1] % L) + L) % L;
      EXPECT_DOUBLE_EQ(f(p, 0), pi + 100.0 * pj) << "ghost " << p;
    });
  }
}

TEST(MultiFab, SingleBoxPeriodicSelfWrap) {
  // One box spanning the whole domain must wrap onto itself.
  const auto g = geom_periodic(true, false);
  MultiFab<2> mf(BoxArray<2>(g.domain()), 1, 1);
  fill_linear(mf);
  mf.fill_boundary(g);
  const auto& f = mf.fab(0);
  EXPECT_DOUBLE_EQ(f(IntVect2(-1, 5), 0), 31 + 100.0 * 5);
  EXPECT_DOUBLE_EQ(f(IntVect2(32, 5), 0), 0 + 100.0 * 5);
}

TEST(MultiFab, SumBoundaryConservesTotal) {
  const auto g = geom_periodic(true, true);
  const auto ba = BoxArray<2>::decompose(g.domain(), 16);
  MultiFab<2> mf(ba, 1, 2);

  // Deposit into valid + ghost cells of every fab.
  Real expected = 0;
  for (int m = 0; m < mf.num_fabs(); ++m) {
    auto& f = mf.fab(m);
    f.for_each_cell(mf.grown_box(m), [&](const IntVect2& p) {
      f(p, 0) = 1.0 + 0.01 * m;
      expected += 1.0 + 0.01 * m;
    });
  }
  mf.sum_boundary(g);
  EXPECT_NEAR(mf.sum(0), expected, 1e-9 * std::abs(expected));

  // Ghosts are zeroed afterwards.
  for (int m = 0; m < mf.num_fabs(); ++m) {
    const auto& f = mf.fab(m);
    const auto vb = mf.valid_box(m);
    f.for_each_cell(mf.grown_box(m), [&](const IntVect2& p) {
      if (!vb.contains(p)) { EXPECT_EQ(f(p, 0), 0.0); }
    });
  }
}

TEST(MultiFab, SumBoundaryMatchesManualStencil) {
  // Two boxes side by side, deposit 1.0 into a ghost cell of the left box
  // that lies in the right box's valid region: after sum_boundary the right
  // box owns it.
  const auto g = Geometry<2>(Box2(IntVect2(0, 0), IntVect2(15, 7)), RealVect2(0, 0),
                             RealVect2(1, 1), {false, false});
  const auto ba = BoxArray<2>::decompose(g.domain(), IntVect2(8, 8));
  ASSERT_EQ(ba.size(), 2);
  MultiFab<2> mf(ba, 1, 2);
  mf.fab(0)(IntVect2(8, 3), 0) = 1.0; // ghost of box 0, valid in box 1
  mf.fab(1)(IntVect2(8, 3), 0) = 0.5;
  mf.sum_boundary(g);
  EXPECT_DOUBLE_EQ(mf.fab(1)(IntVect2(8, 3), 0), 1.5);
  EXPECT_DOUBLE_EQ(mf.fab(0)(IntVect2(8, 3), 0), 0.0);
}

TEST(MultiFab, ParallelCopyAcrossBoxArrays) {
  const auto g = geom_periodic(false, false);
  const auto ba_a = BoxArray<2>::decompose(g.domain(), 16);
  const auto ba_b = BoxArray<2>::decompose(g.domain(), IntVect2(8, 32));
  MultiFab<2> a(ba_a, 1, 2);
  MultiFab<2> b(ba_b, 1, 2);
  fill_linear(a);
  b.parallel_copy(a, 0, 0, 1);
  for (int m = 0; m < b.num_fabs(); ++m) {
    const auto& f = b.fab(m);
    f.for_each_cell(b.valid_box(m), [&](const IntVect2& p) {
      EXPECT_DOUBLE_EQ(f(p, 0), p[0] + 100.0 * p[1]);
    });
  }
}

TEST(MultiFab, ParallelCopyAdd) {
  const auto g = geom_periodic(false, false);
  const auto ba = BoxArray<2>::decompose(g.domain(), 16);
  MultiFab<2> a(ba, 1, 0), b(ba, 1, 0);
  a.set_val(2.0);
  b.set_val(3.0);
  b.parallel_copy(a, 0, 0, 1, 0, 0, /*add=*/true);
  EXPECT_DOUBLE_EQ(b.fab(0)(IntVect2(0, 0), 0), 5.0);
  EXPECT_DOUBLE_EQ(b.sum(0), 5.0 * 32 * 32);
}

TEST(MultiFab, Reductions) {
  const auto g = geom_periodic(false, false);
  MultiFab<2> mf(BoxArray<2>(g.domain()), 1, 1);
  mf.set_val(0.0);
  mf.fab(0)(IntVect2(3, 3), 0) = -7.0;
  mf.fab(0)(IntVect2(4, 4), 0) = 2.0;
  EXPECT_DOUBLE_EQ(mf.max_abs(0), 7.0);
  EXPECT_DOUBLE_EQ(mf.sum(0), -5.0);
  EXPECT_DOUBLE_EQ(mf.sum_sq(0), 49.0 + 4.0);
}

TEST(MultiFab, ShiftDataScrolls) {
  const auto g = geom_periodic(false, false);
  MultiFab<2> mf(BoxArray<2>(g.domain()), 1, 2);
  fill_linear(mf);
  mf.fill_boundary(g);
  mf.shift_data(0, 2, -1.0);
  const auto& f = mf.fab(0);
  // value(i) == old value(i+2) wherever that was in the allocation.
  EXPECT_DOUBLE_EQ(f(IntVect2(0, 5), 0), 2 + 100.0 * 5);
  EXPECT_DOUBLE_EQ(f(IntVect2(29, 5), 0), 31 + 100.0 * 5);
  // freshly exposed cells at the high end get the fill value.
  EXPECT_DOUBLE_EQ(f(IntVect2(33, 5), 0), -1.0);
}

TEST(MultiFab, LinComb) {
  const auto g = geom_periodic(false, false);
  const auto ba = BoxArray<2>::decompose(g.domain(), 16);
  MultiFab<2> a(ba, 1, 1), b(ba, 1, 1);
  a.set_val(10.0);
  b.set_val(4.0);
  a.lin_comb(0.5, 2.0, b, 0, 0, 1); // a = 0.5 a + 2 b = 5 + 8
  EXPECT_DOUBLE_EQ(a.fab(0)(IntVect2(0, 0), 0), 13.0);
}

} // namespace
} // namespace mrpic
