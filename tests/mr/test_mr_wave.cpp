// Wave-propagation properties of the MR construct: internal sources must
// reach the parent through the restricted currents, the companion must be
// the coarse shadow of the fine solution, and the no-source patch must stay
// exactly quiet.

#include <gtest/gtest.h>

#include <cmath>

#include "src/fields/fdtd.hpp"
#include "src/mr/mr_patch.hpp"

namespace mrpic::mr {
namespace {

using mrpic::constants::c;

mrpic::Geometry<2> parent_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(63, 63)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(64e-7, 64e-7),
                            {true, true});
}

MRPatch<2>::Config patch_config() {
  MRPatch<2>::Config cfg;
  cfg.region = mrpic::Box2(mrpic::IntVect2(20, 20), mrpic::IntVect2(43, 43));
  cfg.pml.npml = 8;
  return cfg;
}

// Drive an oscillating Jz dipole at the (fine) patch center, mirroring the
// PIC loop's current pathway: deposit on fine, restrict+add to parent,
// advance everything.
void drive_dipole_step(fields::FieldSet<2>& parent, MRPatch<2>& patch,
                       fields::FDTDSolver<2>& solver, fields::Pml<2>* parent_pml, Real t,
                       Real dt, Real omega) {
  parent.zero_current();
  patch.fine().zero_current();
  patch.coarse().zero_current();
  const auto fr = patch.fine_region();
  const mrpic::IntVect2 center((fr.lo(0) + fr.hi(0)) / 2, (fr.lo(1) + fr.hi(1)) / 2);
  patch.fine().J().fab(0)(center, 2) = 1e8 * std::sin(omega * t);
  patch.sync_currents(parent.J());

  auto exchange = [&] {
    parent.fill_boundary();
    if (parent_pml != nullptr) {
      parent_pml->exchange_from_interior(parent);
      parent_pml->fill_boundary();
      parent_pml->copy_to_interior(parent);
    }
  };
  exchange();
  solver.evolve_b(parent, dt / 2);
  if (parent_pml != nullptr) { parent_pml->evolve_b(dt / 2); }
  patch.evolve_b(dt / 2);
  exchange();
  solver.evolve_e(parent, dt);
  if (parent_pml != nullptr) { parent_pml->evolve_e(dt); }
  patch.evolve_e(dt);
  exchange();
  solver.evolve_b(parent, dt / 2);
  if (parent_pml != nullptr) { parent_pml->evolve_b(dt / 2); }
  patch.evolve_b(dt / 2);
  patch.build_aux(parent);
}

TEST(MRWave, InternalSourceReachesParentOutsideRegion) {
  const auto geom = parent_geom();
  fields::FieldSet<2> parent(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 32));
  MRPatch<2> patch(geom, patch_config());
  fields::FDTDSolver<2> solver;
  const Real dt = fields::cfl_dt(patch.fine().geom());
  const Real omega = 2 * mrpic::constants::pi * c / 1.6e-6;

  for (int s = 0; s < 150; ++s) {
    drive_dipole_step(parent, patch, solver, nullptr, s * dt, dt, omega);
  }
  // The wave must be visible on the parent well outside the patch region.
  Real outside_max = 0;
  for (int m = 0; m < parent.E().num_fabs(); ++m) {
    const auto e = parent.E().const_array(m);
    const auto& vb = parent.E().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        if (!patch.region().grown(4).contains(mrpic::IntVect2(i, j))) {
          outside_max = std::max(outside_max, std::abs(e(i, j, 0, 2)));
        }
      }
    }
  }
  EXPECT_GT(outside_max, 1.0) << "restricted currents must radiate into the parent";
  // And the fine grid resolves the source region.
  EXPECT_GT(patch.fine().E().max_abs(2), outside_max);
}

TEST(MRWave, CompanionShadowsFineSolution) {
  // The coarse companion sees the restricted currents of the fine grid, so
  // away from the source its field must track the restriction of the fine
  // field (both are PML-terminated solutions of the same sources).
  const auto geom = parent_geom();
  fields::FieldSet<2> parent(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 32));
  MRPatch<2> patch(geom, patch_config());
  fields::FDTDSolver<2> solver;
  const Real dt = fields::cfl_dt(patch.fine().geom());
  const Real omega = 2 * mrpic::constants::pi * c / 1.6e-6;
  for (int s = 0; s < 120; ++s) {
    drive_dipole_step(parent, patch, solver, nullptr, s * dt, dt, omega);
  }
  // Compare Ez at a probe a few coarse cells from the center.
  const auto& region = patch.region();
  const mrpic::IntVect2 probe((region.lo(0) + region.hi(0)) / 2 + 5,
                              (region.lo(1) + region.hi(1)) / 2);
  const Real coarse_val = patch.coarse().E().fab(0)(probe, 2);
  const Real fine_val = patch.fine().E().fab(0)(mrpic::IntVect2(2 * probe[0], 2 * probe[1]), 2);
  const Real scale = patch.fine().E().max_abs(2);
  ASSERT_GT(scale, 0.0);
  // Same sources at different resolutions: agree to coarse truncation.
  EXPECT_NEAR(coarse_val / scale, fine_val / scale, 0.25);
  EXPECT_GT(std::abs(coarse_val), 0.0);
}

TEST(MRWave, QuietPatchStaysExactlyQuiet) {
  // No sources anywhere: every grid must remain identically zero (the MR
  // plumbing itself must not manufacture fields).
  const auto geom = parent_geom();
  fields::FieldSet<2> parent(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 32));
  MRPatch<2> patch(geom, patch_config());
  fields::FDTDSolver<2> solver;
  const Real dt = fields::cfl_dt(patch.fine().geom());
  for (int s = 0; s < 40; ++s) {
    patch.sync_currents(parent.J());
    parent.fill_boundary();
    solver.evolve_b(parent, dt / 2);
    patch.evolve_b(dt / 2);
    parent.fill_boundary();
    solver.evolve_e(parent, dt);
    patch.evolve_e(dt);
    parent.fill_boundary();
    solver.evolve_b(parent, dt / 2);
    patch.evolve_b(dt / 2);
    patch.build_aux(parent);
  }
  EXPECT_EQ(parent.E().max_abs(2), 0.0);
  EXPECT_EQ(patch.fine().E().max_abs(2), 0.0);
  EXPECT_EQ(patch.aux_E().max_abs(2), 0.0);
}

} // namespace
} // namespace mrpic::mr
