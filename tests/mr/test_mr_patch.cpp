#include <gtest/gtest.h>

#include "src/mr/mr_patch.hpp"

namespace mrpic::mr {
namespace {

mrpic::Geometry<2> parent_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(63, 31)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(64e-7, 32e-7),
                            {false, false});
}

MRPatch<2>::Config patch_config() {
  MRPatch<2>::Config cfg;
  cfg.region = mrpic::Box2(mrpic::IntVect2(16, 8), mrpic::IntVect2(39, 23));
  cfg.ratio = 2;
  cfg.transition_cells = 2;
  cfg.pml.npml = 8;
  return cfg;
}

TEST(MRPatch, ConstructionGeometry) {
  const auto geom = parent_geom();
  MRPatch<2> patch(geom, patch_config());
  EXPECT_TRUE(patch.active());
  EXPECT_EQ(patch.fine_region(),
            mrpic::Box2(mrpic::IntVect2(32, 16), mrpic::IntVect2(79, 47)));
  // Fine grid spacing is half the parent's.
  EXPECT_DOUBLE_EQ(patch.fine().geom().cell_size(0), geom.cell_size(0) / 2);
  // Companion lives in the parent's index space.
  EXPECT_DOUBLE_EQ(patch.coarse().geom().cell_size(0), geom.cell_size(0));
  // extra cells = fine region + companion region.
  EXPECT_EQ(patch.extra_cells(), 48 * 32 + 24 * 16);
}

TEST(MRPatch, RegionAndInteriorMembership) {
  const auto geom = parent_geom();
  MRPatch<2> patch(geom, patch_config());
  const mrpic::Real dx = geom.cell_size(0);
  // Center of the region.
  EXPECT_TRUE(patch.in_region(geom, {28.0 * dx, 16.0 * dx}));
  EXPECT_TRUE(patch.in_interior(geom, {28.0 * dx, 16.0 * dx}));
  // In the transition zone (within 2 cells of the region edge).
  EXPECT_TRUE(patch.in_region(geom, {16.5 * dx, 16.0 * dx}));
  EXPECT_FALSE(patch.in_interior(geom, {16.5 * dx, 16.0 * dx}));
  // Outside.
  EXPECT_FALSE(patch.in_region(geom, {10.0 * dx, 16.0 * dx}));
  // Removal disables membership.
  patch.remove();
  EXPECT_FALSE(patch.in_region(geom, {28.0 * dx, 16.0 * dx}));
  EXPECT_EQ(patch.extra_cells(), 0);
}

TEST(MRPatch, AuxEqualsParentForExternalUniformField) {
  // With no internal sources (fine == coarse == 0), the substitution
  // F(a) = F(f) + I[F(s) - F(c)] must reproduce the parent field exactly
  // for a uniform parent field.
  const auto geom = parent_geom();
  fields::FieldSet<2> parent(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 32));
  parent.E().set_val(3.5, 2);
  parent.B().set_val(-1.25, 0);
  parent.fill_boundary();

  MRPatch<2> patch(geom, patch_config());
  patch.build_aux(parent);

  const auto a_e = patch.aux_E().const_array(0);
  const auto a_b = patch.aux_B().const_array(0);
  const auto fr = patch.fine_region();
  for (int j = fr.lo(1); j <= fr.hi(1); ++j) {
    for (int i = fr.lo(0); i <= fr.hi(0); ++i) {
      EXPECT_NEAR(a_e(i, j, 0, 2), 3.5, 1e-12);
      EXPECT_NEAR(a_b(i, j, 0, 0), -1.25, 1e-12);
      EXPECT_NEAR(a_e(i, j, 0, 0), 0.0, 1e-12);
    }
  }
}

TEST(MRPatch, AuxReproducesLinearParentField) {
  const auto geom = parent_geom();
  fields::FieldSet<2> parent(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 32));
  // Ez linear in x (nodal component: easy closed form).
  for (int m = 0; m < parent.E().num_fabs(); ++m) {
    auto& fab = parent.E().fab(m);
    fab.for_each_cell(parent.E().grown_box(m), [&](const mrpic::IntVect2& p) {
      fab(p, 2) = 2.0 * p[0] + 0.5 * p[1];
    });
  }
  MRPatch<2> patch(geom, patch_config());
  patch.build_aux(parent);
  const auto a_e = patch.aux_E().const_array(0);
  const auto fr = patch.fine_region();
  for (int j = fr.lo(1); j <= fr.hi(1); ++j) {
    for (int i = fr.lo(0); i <= fr.hi(0); ++i) {
      // Fine node i sits at parent coordinate i/2.
      EXPECT_NEAR(a_e(i, j, 0, 2), 2.0 * (i / 2.0) + 0.5 * (j / 2.0), 1e-10);
    }
  }
}

TEST(MRPatch, SyncCurrentsRestrictsAndAccumulates) {
  const auto geom = parent_geom();
  MRPatch<2> patch(geom, patch_config());
  mrpic::MultiFab<2> parent_J(mrpic::BoxArray<2>::decompose(geom.domain(), 32), 3,
                              mrpic::default_num_ghost);
  parent_J.set_val(1.0); // pre-existing current everywhere

  patch.fine().J().set_val(6.0);
  patch.sync_currents(parent_J);

  // Companion holds the restricted (constant) fine current.
  const auto cj = patch.coarse().J().const_array(0);
  const auto& region = patch.region();
  EXPECT_NEAR(cj(region.lo(0) + 3, region.lo(1) + 3, 0, 0), 6.0, 1e-12);

  // Parent: 1 + 6 inside the region, 1 outside.
  for (int m = 0; m < parent_J.num_fabs(); ++m) {
    const auto a = parent_J.const_array(m);
    const auto& vb = parent_J.valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        const bool inside = region.contains(mrpic::IntVect2(i, j));
        // Edge cells of the region see boundary effects from the 2-point
        // restriction stencil reading zero fine ghosts; check the interior.
        if (region.grown(-1).contains(mrpic::IntVect2(i, j))) {
          EXPECT_NEAR(a(i, j, 0, 1), 7.0, 1e-12) << i << "," << j;
        } else if (!inside) {
          EXPECT_NEAR(a(i, j, 0, 1), 1.0, 1e-12) << i << "," << j;
        }
      }
    }
  }
}

TEST(MRPatch, EvolveRunsAndStaysFiniteWithInternalSource) {
  const auto geom = parent_geom();
  MRPatch<2> patch(geom, patch_config());
  // Kick the fine grid with a localized Ez spot and let it ring.
  const auto fr = patch.fine_region();
  const mrpic::IntVect2 center((fr.lo(0) + fr.hi(0)) / 2, (fr.lo(1) + fr.hi(1)) / 2);
  patch.fine().E().fab(0)(center, 2) = 1.0;
  const Real dt = fields::cfl_dt(patch.fine().geom());
  for (int s = 0; s < 100; ++s) {
    patch.evolve_b(dt / 2);
    patch.evolve_e(dt);
    patch.evolve_b(dt / 2);
  }
  const Real emax = patch.fine().E().max_abs(2);
  EXPECT_TRUE(std::isfinite(emax));
  EXPECT_LT(emax, 2.0); // no blow-up; wave spreads and is absorbed
}

TEST(MRPatch, ShiftWindowScrollsFineAtRatio) {
  const auto geom = parent_geom();
  MRPatch<2> patch(geom, patch_config());
  const auto fr = patch.fine_region();
  const mrpic::IntVect2 mark(fr.lo(0) + 10, fr.lo(1) + 10);
  patch.fine().E().fab(0)(mark, 2) = 9.0;
  patch.shift_window(0, 1); // parent shifted one cell -> fine shifts two
  EXPECT_DOUBLE_EQ(patch.fine().E().fab(0)(mark - mrpic::IntVect2(2, 0), 2), 9.0);
  EXPECT_DOUBLE_EQ(patch.fine().E().fab(0)(mark, 2), 0.0);
  // Geometries slid by the same physical distance.
  EXPECT_NEAR(patch.fine().geom().prob_lo()[0], geom.cell_size(0), 1e-20);
  EXPECT_NEAR(patch.coarse().geom().prob_lo()[0], geom.cell_size(0), 1e-20);
}

} // namespace
} // namespace mrpic::mr
