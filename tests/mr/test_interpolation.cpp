#include <gtest/gtest.h>

#include "src/fields/yee.hpp"
#include "src/mr/interpolation.hpp"

namespace mrpic::mr {
namespace {

using mrpic::Box2;
using mrpic::FArrayBox;
using mrpic::IntVect2;

// Fill a fab (one component) with a linear function of the *staggered*
// physical coordinate, in the given index space resolution.
void fill_linear(FArrayBox<2>& fab, const Box2& region, const mrpic::IntVect2& stag,
                 double h /* cell size */, double a, double b) {
  fab.for_each_cell(region, [&](const IntVect2& p) {
    const double x = (p[0] + 0.5 * stag[0]) * h;
    const double y = (p[1] + 0.5 * stag[1]) * h;
    fab(p, 0) = a * x + b * y;
  });
}

TEST(Interpolation, InterpToFineReproducesLinear) {
  // Coarse cell size 1, ratio 2 -> fine cell size 0.5.
  const Box2 coarse_region(IntVect2(0, 0), IntVect2(15, 15));
  const Box2 fine_region = coarse_region.refined(2);
  for (int comp = 0; comp < 3; ++comp) {
    for (auto stag_fn : {&mrpic::fields::e_stag<2>, &mrpic::fields::b_stag<2>}) {
      const auto stag = stag_fn(comp);
      FArrayBox<2> coarse(coarse_region.grown(3), 1);
      FArrayBox<2> fine(fine_region.grown(3), 1);
      fill_linear(coarse, coarse_region.grown(3), stag, 1.0, 2.0, -3.0);
      interp_to_fine<2>(coarse, fine, fine_region, 0, 0, stag, 2, false);
      fine.for_each_cell(fine_region, [&](const IntVect2& p) {
        const double x = (p[0] + 0.5 * stag[0]) * 0.5;
        const double y = (p[1] + 0.5 * stag[1]) * 0.5;
        EXPECT_NEAR(fine(p, 0), 2.0 * x - 3.0 * y, 1e-12)
            << "comp " << comp << " at " << p;
      });
    }
  }
}

TEST(Interpolation, RestrictionReproducesLinear) {
  const Box2 coarse_region(IntVect2(0, 0), IntVect2(15, 15));
  const Box2 fine_region = coarse_region.refined(2);
  for (int comp = 0; comp < 3; ++comp) {
    const auto stag = mrpic::fields::j_stag<2>(comp);
    FArrayBox<2> fine(fine_region.grown(3), 1);
    FArrayBox<2> coarse(coarse_region.grown(3), 1);
    fill_linear(fine, fine_region.grown(3), stag, 0.5, 1.5, 0.5);
    restrict_to_coarse<2>(fine, coarse, coarse_region, 0, 0, stag, 2, false);
    coarse.for_each_cell(coarse_region, [&](const IntVect2& p) {
      const double x = (p[0] + 0.5 * stag[0]) * 1.0;
      const double y = (p[1] + 0.5 * stag[1]) * 1.0;
      EXPECT_NEAR(coarse(p, 0), 1.5 * x + 0.5 * y, 1e-12) << "comp " << comp;
    });
  }
}

TEST(Interpolation, RestrictThenInterpIsIdentityOnConstants) {
  const Box2 coarse_region(IntVect2(0, 0), IntVect2(7, 7));
  const Box2 fine_region = coarse_region.refined(2);
  const mrpic::IntVect2 stag(1, 0);
  FArrayBox<2> fine(fine_region.grown(3), 1);
  FArrayBox<2> coarse(coarse_region.grown(3), 1);
  FArrayBox<2> fine2(fine_region.grown(3), 1);
  fine.set_val(4.25);
  restrict_to_coarse<2>(fine, coarse, coarse_region.grown(1), 0, 0, stag, 2, false);
  interp_to_fine<2>(coarse, fine2, fine_region, 0, 0, stag, 2, false);
  fine2.for_each_cell(fine_region, [&](const IntVect2& p) {
    EXPECT_NEAR(fine2(p, 0), 4.25, 1e-13);
  });
}

TEST(Interpolation, AddModeAccumulates) {
  const Box2 coarse_region(IntVect2(0, 0), IntVect2(7, 7));
  const Box2 fine_region = coarse_region.refined(2);
  const mrpic::IntVect2 stag(0, 0);
  FArrayBox<2> coarse(coarse_region.grown(2), 1);
  FArrayBox<2> fine(fine_region.grown(2), 1);
  coarse.set_val(2.0);
  fine.set_val(1.0);
  interp_to_fine<2>(coarse, fine, fine_region, 0, 0, stag, 2, /*add=*/true);
  fine.for_each_cell(fine_region, [&](const IntVect2& p) {
    EXPECT_DOUBLE_EQ(fine(p, 0), 3.0);
  });
}

TEST(Interpolation, Restrict3DStaggered) {
  const mrpic::Box3 coarse_region(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(5, 5, 5));
  const auto fine_region = coarse_region.refined(2);
  const mrpic::IntVect3 stag(0, 1, 1); // Bx-like
  mrpic::FArrayBox<3> fine(fine_region.grown(2), 1);
  mrpic::FArrayBox<3> coarse(coarse_region.grown(2), 1);
  fine.for_each_cell(fine_region.grown(2), [&](const mrpic::IntVect3& p) {
    fine(p, 0) = (p[0] + 0.5 * stag[0]) * 0.5 + 2.0 * ((p[1] + 0.5 * stag[1]) * 0.5) -
                 ((p[2] + 0.5 * stag[2]) * 0.5);
  });
  restrict_to_coarse<3>(fine, coarse, coarse_region, 0, 0, stag, 2, false);
  coarse.for_each_cell(coarse_region, [&](const mrpic::IntVect3& p) {
    const double expect =
        (p[0] + 0.5 * stag[0]) + 2.0 * (p[1] + 0.5 * stag[1]) - (p[2] + 0.5 * stag[2]);
    EXPECT_NEAR(coarse(p, 0), expect, 1e-12);
  });
}

} // namespace
} // namespace mrpic::mr
