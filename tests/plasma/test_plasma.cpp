#include <gtest/gtest.h>

#include <cmath>

#include "src/plasma/plasma_injector.hpp"

namespace mrpic::plasma {
namespace {

using namespace mrpic::constants;

TEST(DensityProfile, CriticalDensityAt800nm) {
  // n_c ~ 1.1e21 / lambda_um^2 cm^-3 = 1.72e21 cm^-3 = 1.72e27 m^-3.
  const Real nc = critical_density(0.8e-6);
  EXPECT_NEAR(nc / 1.742e27, 1.0, 0.01);
}

TEST(DensityProfile, SlabAndGasJetShapes) {
  auto s = slab<2>(10.0, 1.0, 2.0);
  EXPECT_EQ(s(mrpic::RealVect2(0.5, 0)), 0.0);
  EXPECT_EQ(s(mrpic::RealVect2(1.5, 0)), 10.0);
  EXPECT_EQ(s(mrpic::RealVect2(2.5, 0)), 0.0);

  auto g = gas_jet<2>(4.0, 0.0, 10.0, 2.0);
  EXPECT_EQ(g(mrpic::RealVect2(-0.1, 0)), 0.0);
  EXPECT_NEAR(g(mrpic::RealVect2(1.0, 0)), 2.0, 1e-12); // half way up the ramp
  EXPECT_EQ(g(mrpic::RealVect2(5.0, 0)), 4.0);          // flat top
  EXPECT_NEAR(g(mrpic::RealVect2(9.0, 0)), 2.0, 1e-12); // down ramp
}

TEST(DensityProfile, HybridTargetComposition) {
  // Gas jet in front of a solid slab (paper Fig. 1b).
  auto h = hybrid_target<2>(/*n_gas=*/1.0, /*gas_x0=*/0.0, /*ramp=*/1.0,
                            /*n_solid=*/100.0, /*solid_x0=*/5.0, /*solid_x1=*/6.0);
  EXPECT_NEAR(h(mrpic::RealVect2(3.0, 0)), 1.0, 1e-12);   // gas
  EXPECT_NEAR(h(mrpic::RealVect2(5.5, 0)), 100.0, 1e-12); // solid
  EXPECT_EQ(h(mrpic::RealVect2(7.0, 0)), 0.0);            // behind
}

mrpic::Geometry<2> make_geom() {
  return mrpic::Geometry<2>(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)),
                            mrpic::RealVect2(0, 0), mrpic::RealVect2(3.2e-6, 3.2e-6),
                            {false, false});
}

TEST(PlasmaInjector, UniformChargeMatchesAnalytic) {
  const auto geom = make_geom();
  const Real n0 = 1e24;
  InjectorConfig<2> cfg;
  cfg.density = uniform<2>(n0);
  cfg.ppc = mrpic::IntVect2(2, 2);
  PlasmaInjector<2> inj(cfg);
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>::decompose(geom.domain(), 16));
  const auto added = inj.inject_all(pc, geom);
  EXPECT_EQ(added, 32 * 32 * 4);
  const Real volume = 3.2e-6 * 3.2e-6; // unit z-depth
  EXPECT_NEAR(pc.total_charge(), -q_e * n0 * volume, q_e * n0 * volume * 1e-12);
}

TEST(PlasmaInjector, RespectsProfileSupport) {
  const auto geom = make_geom();
  InjectorConfig<2> cfg;
  cfg.density = slab<2>(1e24, 1.0e-6, 2.0e-6);
  cfg.ppc = mrpic::IntVect2(1, 1);
  PlasmaInjector<2> inj(cfg);
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>(geom.domain()));
  inj.inject_all(pc, geom);
  EXPECT_GT(pc.total_particles(), 0);
  for (std::size_t p = 0; p < pc.tile(0).size(); ++p) {
    EXPECT_GE(pc.tile(0).x[0][p], 1.0e-6);
    EXPECT_LT(pc.tile(0).x[0][p], 2.0e-6);
  }
}

TEST(PlasmaInjector, RegionInjectionIsDecompositionInvariant) {
  // Injecting [strip A] then [strip B] must equal injecting [A union B]:
  // the per-cell RNG seeding makes loading independent of injection order
  // (this is what makes moving-window refills reproducible).
  const auto geom = make_geom();
  InjectorConfig<2> cfg;
  cfg.density = uniform<2>(1e24);
  cfg.ppc = mrpic::IntVect2(2, 1);
  cfg.temperature_ev = 10.0; // exercise the RNG path
  PlasmaInjector<2> inj(cfg);

  particles::ParticleContainer<2> pc1(particles::Species::electron(),
                                      mrpic::BoxArray<2>(geom.domain()));
  inj.inject(pc1, geom, mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)));

  particles::ParticleContainer<2> pc2(particles::Species::electron(),
                                      mrpic::BoxArray<2>(geom.domain()));
  inj.inject(pc2, geom, mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(15, 31)));
  inj.inject(pc2, geom, mrpic::Box2(mrpic::IntVect2(16, 0), mrpic::IntVect2(31, 31)));

  ASSERT_EQ(pc1.total_particles(), pc2.total_particles());
  // Compare summary statistics (ordering differs).
  EXPECT_NEAR(pc1.total_charge(), pc2.total_charge(), std::abs(pc1.total_charge()) * 1e-12);
  EXPECT_NEAR(pc1.kinetic_energy(), pc2.kinetic_energy(),
              pc1.kinetic_energy() * 1e-9);
}

TEST(PlasmaInjector, ColdPlasmaHasZeroMomentum) {
  const auto geom = make_geom();
  InjectorConfig<2> cfg;
  cfg.density = uniform<2>(1e24);
  cfg.temperature_ev = 0;
  PlasmaInjector<2> inj(cfg);
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>(geom.domain()));
  inj.inject_all(pc, geom);
  EXPECT_EQ(pc.kinetic_energy(), 0.0);
}

TEST(PlasmaInjector, ThermalSpreadMatchesTemperature) {
  const auto geom = make_geom();
  const Real T_ev = 1000.0;
  InjectorConfig<2> cfg;
  cfg.density = uniform<2>(1e24);
  cfg.ppc = mrpic::IntVect2(3, 3);
  cfg.temperature_ev = T_ev;
  PlasmaInjector<2> inj(cfg);
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>(geom.domain()));
  inj.inject_all(pc, geom);
  // <u_x^2> = kT/m for a Maxwellian.
  Real sum2 = 0;
  std::int64_t n = 0;
  const auto& t = pc.tile(0);
  for (std::size_t p = 0; p < t.size(); ++p) {
    sum2 += t.u[0][p] * t.u[0][p];
    ++n;
  }
  const Real expected = T_ev * q_e / m_e;
  EXPECT_NEAR(sum2 / n / expected, 1.0, 0.05);
}

} // namespace
} // namespace mrpic::plasma
