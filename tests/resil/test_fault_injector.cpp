#include <gtest/gtest.h>

#include <cmath>

#include "src/cluster/sim_cluster.hpp"
#include "src/obs/rank_recorder.hpp"
#include "src/resil/fault_injector.hpp"

namespace mrpic::resil {
namespace {

using cluster::MessageFate;

TEST(FaultInjector, CleanPlanIsTransparent) {
  FaultInjector inj(FaultPlan{});
  inj.set_step(7);
  EXPECT_TRUE(inj.rank_alive(0));
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(3), 1.0);
  const auto fate = inj.message_fate(0, 1, 4096, 0);
  EXPECT_TRUE(fate.delivered);
  EXPECT_EQ(fate.attempts, 1);
  EXPECT_DOUBLE_EQ(fate.extra_s, 0);
  EXPECT_EQ(inj.crash_due(7), -1);
  EXPECT_EQ(inj.first_dead_rank(), -1);
}

TEST(FaultInjector, SlowdownAppliesOnlyInsideItsWindow) {
  FaultPlan plan;
  plan.slowdowns.push_back({.rank = 1, .factor = 3.0, .from_step = 10, .to_step = 20});
  plan.slowdowns.push_back({.rank = 1, .factor = 2.0, .from_step = 15, .to_step = 20});
  FaultInjector inj(plan);

  inj.set_step(9);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1), 1.0);
  inj.set_step(10);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1), 3.0);
  inj.set_step(15);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1), 6.0); // windows compose
  inj.set_step(20);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(1), 1.0); // to_step exclusive
  inj.set_step(15);
  EXPECT_DOUBLE_EQ(inj.compute_multiplier(0), 1.0); // other ranks untouched
}

TEST(FaultInjector, CrashKillsRankUntilRetired) {
  FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .step = 5});
  FaultInjector inj(plan);

  inj.set_step(4);
  EXPECT_TRUE(inj.rank_alive(2));
  EXPECT_EQ(inj.crash_due(4), -1);
  EXPECT_EQ(inj.crash_due(5), 2);

  inj.set_step(5);
  EXPECT_FALSE(inj.rank_alive(2));
  EXPECT_EQ(inj.first_dead_rank(), 2);
  inj.set_step(9);
  EXPECT_FALSE(inj.rank_alive(2)); // dead stays dead...

  inj.retire_crash(2); // ...until recovery retires the crash
  EXPECT_TRUE(inj.rank_alive(2));
  EXPECT_EQ(inj.first_dead_rank(), -1);
  EXPECT_EQ(inj.crash_due(5), -1); // must not re-fire on replay
}

TEST(FaultInjector, DeadPeerExhaustsTheRetryLadder) {
  FaultPlan plan;
  plan.crashes.push_back({.rank = 1, .step = 0});
  DetectorConfig det;
  det.retry.max_retries = 3;
  FaultInjector inj(plan, det);
  inj.set_step(0);

  for (const auto& fate :
       {inj.message_fate(0, 1, 1024, 0), inj.message_fate(1, 2, 1024, 1)}) {
    EXPECT_FALSE(fate.delivered);
    EXPECT_EQ(fate.attempts, 1 + det.retry.max_retries);
    EXPECT_DOUBLE_EQ(fate.extra_s, det.retry.give_up_time_s());
  }
}

TEST(FaultInjector, FaultDecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  plan.message.drop_p = 0.2;
  plan.message.corrupt_p = 0.1;
  plan.message.delay_p = 0.1;
  FaultInjector a(plan), b(plan);

  for (std::int64_t step : {0, 3, 17}) {
    a.set_step(step);
    b.set_step(step);
    for (int ordinal = 0; ordinal < 200; ++ordinal) {
      const auto fa = a.message_fate(0, 1, 512, ordinal);
      const auto fb = b.message_fate(0, 1, 512, ordinal);
      EXPECT_EQ(fa.delivered, fb.delivered);
      EXPECT_EQ(fa.attempts, fb.attempts);
      EXPECT_DOUBLE_EQ(fa.extra_s, fb.extra_s);
      EXPECT_EQ(fa.corrupted, fb.corrupted);
      EXPECT_EQ(fa.delayed, fb.delayed);
    }
  }

  // A different seed decides differently somewhere.
  plan.seed = 43;
  FaultInjector c(plan);
  c.set_step(0);
  a.set_step(0);
  int differs = 0;
  for (int ordinal = 0; ordinal < 200; ++ordinal) {
    if (c.message_fate(0, 1, 512, ordinal).attempts !=
        a.message_fate(0, 1, 512, ordinal).attempts) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, DropRateMatchesProbabilityStatistically) {
  FaultPlan plan;
  plan.seed = 7;
  plan.message.drop_p = 0.3;
  FaultInjector inj(plan);

  int retried = 0;
  const int n = 4000;
  for (int ordinal = 0; ordinal < n; ++ordinal) {
    inj.set_step(ordinal / 100);
    if (inj.message_fate(0, 1, 256, ordinal % 100).attempts > 1) { ++retried; }
  }
  // P(first attempt drops) = 0.3; 4000 samples => ~8 sigma tolerance.
  const double frac = static_cast<double>(retried) / n;
  EXPECT_NEAR(frac, 0.3, 0.06);
}

TEST(FaultInjector, DropChargesTimeoutPlusBackoffPerRetry) {
  // drop_p = 1: every attempt drops, the ladder exhausts.
  FaultPlan plan;
  plan.message.drop_p = 1.0;
  DetectorConfig det;
  det.retry.max_retries = 2;
  det.retry.timeout_s = 1e-3;
  det.retry.backoff_base_s = 4e-3;
  det.retry.backoff_factor = 2.0;
  det.retry.backoff_max_s = 1.0;
  FaultInjector inj(plan, det);
  inj.set_step(0);

  const auto fate = inj.message_fate(0, 1, 64, 0);
  EXPECT_FALSE(fate.delivered);
  EXPECT_EQ(fate.attempts, 3);
  // 3 timeouts + backoff(0) + backoff(1) = 3 ms + 4 ms + 8 ms.
  EXPECT_DOUBLE_EQ(fate.extra_s, 3e-3 + 4e-3 + 8e-3);
  EXPECT_DOUBLE_EQ(fate.extra_s, det.retry.give_up_time_s());
}

TEST(FaultInjector, CorruptChargesBackoffOnly) {
  // corrupt_p = 1 with one retry: NACK is immediate, no ack timeout.
  FaultPlan plan;
  plan.message.corrupt_p = 1.0;
  DetectorConfig det;
  det.retry.max_retries = 1;
  det.retry.timeout_s = 1e-3;
  det.retry.backoff_base_s = 2e-3;
  FaultInjector inj(plan, det);
  inj.set_step(0);

  const auto fate = inj.message_fate(0, 1, 64, 0);
  EXPECT_TRUE(fate.corrupted);
  EXPECT_FALSE(fate.delivered); // both attempts corrupted
  EXPECT_EQ(fate.attempts, 2);
  EXPECT_DOUBLE_EQ(fate.extra_s, 2e-3); // backoff(0) only
}

TEST(FaultInjector, DelayAddsConfiguredLatency) {
  FaultPlan plan;
  plan.message.delay_p = 1.0;
  plan.message.delay_s = 5e-3;
  FaultInjector inj(plan);
  inj.set_step(0);

  const auto fate = inj.message_fate(0, 1, 64, 0);
  EXPECT_TRUE(fate.delivered);
  EXPECT_TRUE(fate.delayed);
  EXPECT_EQ(fate.attempts, 1);
  EXPECT_DOUBLE_EQ(fate.extra_s, 5e-3);
}

// --- SimCluster integration ------------------------------------------------

mrpic::BoxArray<2> grid_ba() {
  return mrpic::BoxArray<2>::decompose(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(63, 63)), 16); // 16 boxes
}

TEST(FaultInjectorCluster, DeadRankShowsUpInStepCost) {
  const auto ba = grid_ba();
  const auto dm = dist::DistributionMapping::make(ba, 4, dist::Strategy::RoundRobin);
  cluster::SimCluster cl(4);

  FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .step = 3});
  FaultInjector inj(plan);
  cl.set_faults(&inj);
  const std::vector<Real> costs(16, 1.0);

  inj.set_step(0);
  const auto healthy = cl.step_cost(ba, dm, costs, 6, 2);
  EXPECT_EQ(healthy.failed_rank, -1);
  EXPECT_DOUBLE_EQ(healthy.detect_s, 0);
  EXPECT_EQ(healthy.retries, 0);

  inj.set_step(3);
  const auto crashed = cl.step_cost(ba, dm, costs, 6, 2);
  EXPECT_EQ(crashed.failed_rank, 2);
  EXPECT_DOUBLE_EQ(crashed.detect_s, inj.detection_time_s());
  EXPECT_GT(crashed.undelivered_messages, 0); // messages to/from the corpse
  EXPECT_GT(crashed.retries, 0);
  EXPECT_GT(crashed.retry_s, 0);
  EXPECT_GT(crashed.total_s, healthy.total_s); // failure costs time
}

TEST(FaultInjectorCluster, StragglersInflateImbalance) {
  const auto ba = grid_ba();
  const auto dm = dist::DistributionMapping::make(ba, 4, dist::Strategy::RoundRobin);
  cluster::SimCluster cl(4);
  const std::vector<Real> costs(16, 1.0);

  const auto clean = cl.step_cost(ba, dm, costs, 6, 2);
  EXPECT_NEAR(clean.imbalance, 1.0, 1e-12); // uniform costs, round-robin

  FaultPlan plan;
  plan.slowdowns.push_back({.rank = 1, .factor = 4.0, .from_step = 0});
  FaultInjector inj(plan);
  inj.set_step(0);
  cl.set_faults(&inj);
  const auto slow = cl.step_cost(ba, dm, costs, 6, 2);
  EXPECT_DOUBLE_EQ(slow.compute_s, 4.0 * clean.compute_s);
  EXPECT_GT(slow.imbalance, 2.0);
}

TEST(FaultInjectorCluster, RetriesReachTheRankRecorder) {
  const auto ba = grid_ba();
  const auto dm = dist::DistributionMapping::make(ba, 4, dist::Strategy::RoundRobin);
  cluster::SimCluster cl(4);

  FaultPlan plan;
  plan.seed = 11;
  plan.message.drop_p = 0.5;
  FaultInjector inj(plan);
  inj.set_step(1);
  cl.set_faults(&inj);

  obs::RankRecorder rec(4);
  rec.set_step(1);
  const auto cost = cl.step_cost(ba, dm, std::vector<Real>(16, 1.0), 6, 2, 8, &rec);
  ASSERT_GT(cost.retries, 0);

  ASSERT_EQ(rec.steps().size(), 1u);
  std::int64_t recorded_retries = 0;
  double recorded_retry_s = 0;
  for (const auto& rs : rec.steps()[0].ranks) {
    recorded_retries += rs.retries;
    recorded_retry_s += rs.retry_s;
  }
  EXPECT_EQ(recorded_retries, 2 * cost.retries); // charged to both endpoints
  EXPECT_GT(recorded_retry_s, 0);

  int msgs_with_retries = 0;
  for (const auto& m : rec.messages()) {
    if (m.attempts > 1) {
      ++msgs_with_retries;
      EXPECT_GT(m.retry_s, 0);
    }
  }
  EXPECT_GT(msgs_with_retries, 0);
}

} // namespace
} // namespace mrpic::resil
