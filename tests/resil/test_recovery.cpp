#include <gtest/gtest.h>

#include "src/resil/recovery.hpp"

namespace mrpic::resil {
namespace {

TEST(Recovery, SurvivorsKeepBoxesWithCompactedIds) {
  // 8 boxes over 4 ranks, round-robin. Rank 2 dies.
  dist::DistributionMapping dm({0, 1, 2, 3, 0, 1, 2, 3}, 4);
  const auto res = remap_after_failure(dm, {}, /*dead_rank=*/2);

  EXPECT_EQ(res.mapping.nranks(), 3);
  EXPECT_EQ(res.boxes_moved, 2);
  // Ranks 0 and 1 keep their ids; rank 3 compacts to 2.
  EXPECT_EQ(res.mapping.rank(0), 0);
  EXPECT_EQ(res.mapping.rank(1), 1);
  EXPECT_EQ(res.mapping.rank(3), 2);
  EXPECT_EQ(res.mapping.rank(4), 0);
  EXPECT_EQ(res.mapping.rank(5), 1);
  EXPECT_EQ(res.mapping.rank(7), 2);
  // Orphans (boxes 2 and 6) land on valid survivor ranks.
  EXPECT_GE(res.mapping.rank(2), 0);
  EXPECT_LT(res.mapping.rank(2), 3);
  EXPECT_GE(res.mapping.rank(6), 0);
  EXPECT_LT(res.mapping.rank(6), 3);
}

TEST(Recovery, OrphansGoToLeastLoadedSurvivors) {
  // Rank 0 already heavy; rank 1 dies; rank 2 light. Orphans must prefer 2.
  dist::DistributionMapping dm({0, 0, 0, 1, 2}, 3);
  const std::vector<Real> costs = {10, 10, 10, 4, 1};
  const auto res = remap_after_failure(dm, costs, /*dead_rank=*/1);

  EXPECT_EQ(res.mapping.nranks(), 2);
  EXPECT_EQ(res.boxes_moved, 1);
  // Survivor rank 2 compacts to id 1 (load 1) and takes the orphan box 3.
  EXPECT_EQ(res.mapping.rank(3), 1);
  EXPECT_EQ(res.mapping.rank(4), 1);
  for (int b = 0; b < 3; ++b) { EXPECT_EQ(res.mapping.rank(b), 0) << b; }
}

TEST(Recovery, LptSpreadsManyOrphans) {
  // Rank 0 dies owning 4 boxes of distinct weight; two equal survivors.
  dist::DistributionMapping dm({0, 0, 0, 0, 1, 2}, 3);
  const std::vector<Real> costs = {8, 6, 5, 3, 1, 1};
  const auto res = remap_after_failure(dm, costs, /*dead_rank=*/0);

  EXPECT_EQ(res.boxes_moved, 4);
  // LPT: 8 -> s0 (9), 6 -> s1 (7), 5 -> s1 (12)? no: least-loaded gets each
  // heaviest next: loads start (1,1); 8->(9,1); 6->(9,7); 5->(9,12)? least
  // is s1 at 7 -> (9,12); 3 -> s0 -> (12,12). Balanced within the heaviest.
  std::vector<double> loads(2, 0);
  for (int b = 0; b < dm.size(); ++b) { loads[res.mapping.rank(b)] += costs[b]; }
  EXPECT_DOUBLE_EQ(loads[0], 12);
  EXPECT_DOUBLE_EQ(loads[1], 12);
  EXPECT_LE(res.imbalance_after, res.imbalance_before + 1e-12);
}

TEST(Recovery, ImbalanceMetricsBracketTheRemap) {
  dist::DistributionMapping dm({0, 1, 2, 3}, 4);
  const std::vector<Real> costs = {5, 5, 5, 5};
  const auto res = remap_after_failure(dm, costs, /*dead_rank=*/3);
  // Before re-homing, the 3 survivors are perfectly balanced.
  EXPECT_DOUBLE_EQ(res.imbalance_before, 1.0);
  // One orphan onto one of three equal survivors: max 10, mean 20/3.
  EXPECT_DOUBLE_EQ(res.imbalance_after, 10.0 / (20.0 / 3.0));
}

TEST(Recovery, DeterministicAcrossCalls) {
  dist::DistributionMapping dm({0, 1, 2, 0, 1, 2, 0, 1, 2, 1}, 3);
  const std::vector<Real> costs = {3, 3, 7, 1, 4, 7, 2, 2, 5, 6};
  const auto a = remap_after_failure(dm, costs, 1);
  const auto b = remap_after_failure(dm, costs, 1);
  EXPECT_EQ(a.mapping.ranks(), b.mapping.ranks());
  EXPECT_EQ(a.boxes_moved, b.boxes_moved);
  EXPECT_DOUBLE_EQ(a.imbalance_after, b.imbalance_after);
}

} // namespace
} // namespace mrpic::resil
