#include <gtest/gtest.h>

#include "src/resil/failure_detector.hpp"

namespace mrpic::resil {
namespace {

TEST(RetryPolicy, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy p;
  p.backoff_base_s = 100e-6;
  p.backoff_factor = 2.0;
  p.backoff_max_s = 500e-6;
  EXPECT_DOUBLE_EQ(p.backoff_s(0), 100e-6);
  EXPECT_DOUBLE_EQ(p.backoff_s(1), 200e-6);
  EXPECT_DOUBLE_EQ(p.backoff_s(2), 400e-6);
  EXPECT_DOUBLE_EQ(p.backoff_s(3), 500e-6); // clamped
  EXPECT_DOUBLE_EQ(p.backoff_s(10), 500e-6);
  // Monotone non-decreasing.
  for (int a = 1; a < 12; ++a) { EXPECT_GE(p.backoff_s(a), p.backoff_s(a - 1)) << a; }
}

TEST(RetryPolicy, GiveUpTimeSumsEveryTimeoutAndBackoff) {
  RetryPolicy p;
  p.max_retries = 2;
  p.timeout_s = 1e-3;
  p.backoff_base_s = 2e-3;
  p.backoff_factor = 3.0;
  p.backoff_max_s = 1.0;
  // attempt 0 times out, backoff(0), attempt 1 times out, backoff(1),
  // attempt 2 times out -> 3 timeouts + backoffs 2ms and 6ms.
  EXPECT_DOUBLE_EQ(p.give_up_time_s(), 3 * 1e-3 + 2e-3 + 6e-3);
}

TEST(RetryPolicy, NoRetriesMeansSingleTimeout) {
  RetryPolicy p;
  p.max_retries = 0;
  p.timeout_s = 7e-4;
  EXPECT_DOUBLE_EQ(p.give_up_time_s(), 7e-4);
}

TEST(FailureDetector, DetectionTimeIsMissedHeartbeatsPlusProbe) {
  DetectorConfig cfg;
  cfg.heartbeat_interval_s = 2e-3;
  cfg.missed_heartbeats = 4;
  cfg.retry.timeout_s = 300e-6;
  FailureDetector det(cfg);
  EXPECT_DOUBLE_EQ(det.detection_time_s(), 4 * 2e-3 + 300e-6);
}

} // namespace
} // namespace mrpic::resil
