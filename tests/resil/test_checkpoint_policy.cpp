#include <gtest/gtest.h>

#include <cmath>

#include "src/resil/checkpoint_policy.hpp"

namespace mrpic::resil {
namespace {

TEST(CheckpointPolicy, PeriodicFiresEveryNSteps) {
  CheckpointPolicyConfig cfg;
  cfg.mode = CheckpointMode::Periodic;
  cfg.interval_steps = 5;
  CheckpointPolicy pol(cfg);

  int fired = 0;
  for (int step = 1; step <= 20; ++step) {
    pol.add_step(0.1);
    if (pol.should_checkpoint()) {
      pol.notify_checkpoint(step, /*measured_cost_s=*/0.02);
      ++fired;
      EXPECT_EQ(step % 5, 0) << "fired off-cadence at step " << step;
    }
  }
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(pol.num_checkpoints(), 4);
  EXPECT_EQ(pol.last_checkpoint_step(), 20);
}

TEST(CheckpointPolicy, YoungOptimumIsSqrt2CM) {
  CheckpointPolicyConfig cfg;
  cfg.mode = CheckpointMode::Young;
  cfg.checkpoint_cost_s = 2.0;
  cfg.mtbf_s = 900.0;
  CheckpointPolicy pol(cfg);
  EXPECT_DOUBLE_EQ(pol.optimal_interval_s(), std::sqrt(2.0 * 2.0 * 900.0));
}

TEST(CheckpointPolicy, DalySubtractsCheckpointCostAndClamps) {
  CheckpointPolicyConfig cfg;
  cfg.mode = CheckpointMode::Daly;
  cfg.checkpoint_cost_s = 2.0;
  cfg.mtbf_s = 900.0;
  CheckpointPolicy pol(cfg);
  EXPECT_DOUBLE_EQ(pol.optimal_interval_s(), std::sqrt(2.0 * 2.0 * 900.0) - 2.0);

  // Pathological C >> M: the optimum must clamp to the floor, not go negative.
  cfg.checkpoint_cost_s = 1e4;
  cfg.mtbf_s = 1e-3;
  cfg.min_interval_s = 0.5;
  CheckpointPolicy clamped(cfg);
  EXPECT_DOUBLE_EQ(clamped.optimal_interval_s(), 0.5);
}

TEST(CheckpointPolicy, YoungFiresOnAccumulatedWorkSeconds) {
  CheckpointPolicyConfig cfg;
  cfg.mode = CheckpointMode::Young;
  cfg.checkpoint_cost_s = 0.5;
  cfg.mtbf_s = 100.0; // optimum = sqrt(2*0.5*100) = 10 s
  CheckpointPolicy pol(cfg);

  for (int i = 0; i < 9; ++i) {
    pol.add_step(1.0);
    EXPECT_FALSE(pol.should_checkpoint()) << i;
  }
  pol.add_step(1.0); // 10 s accrued
  EXPECT_TRUE(pol.should_checkpoint());
  pol.notify_checkpoint(10, 0);
  EXPECT_FALSE(pol.should_checkpoint());
  EXPECT_EQ(pol.steps_since_checkpoint(), 0);
  EXPECT_DOUBLE_EQ(pol.seconds_since_checkpoint(), 0);
}

TEST(CheckpointPolicy, MeasuredCostAdaptsIntervalWithEwma) {
  CheckpointPolicyConfig cfg;
  cfg.mode = CheckpointMode::Young;
  cfg.checkpoint_cost_s = 1.0;
  cfg.cost_smoothing = 0.5;
  cfg.mtbf_s = 50.0;
  CheckpointPolicy pol(cfg);

  pol.notify_checkpoint(1, 3.0); // cost -> 0.5*3 + 0.5*1 = 2
  EXPECT_DOUBLE_EQ(pol.checkpoint_cost_s(), 2.0);
  EXPECT_DOUBLE_EQ(pol.optimal_interval_s(), std::sqrt(2.0 * 2.0 * 50.0));

  pol.notify_checkpoint(2, 2.0); // cost stays 2
  EXPECT_DOUBLE_EQ(pol.checkpoint_cost_s(), 2.0);

  // Non-positive measurements keep the current estimate.
  pol.notify_checkpoint(3, 0.0);
  EXPECT_DOUBLE_EQ(pol.checkpoint_cost_s(), 2.0);
}

TEST(CheckpointPolicy, OverheadFractionCurveHasMinimumAtYoungOptimum) {
  const double C = 1.5, M = 600.0;
  const double t_opt = std::sqrt(2.0 * C * M);
  const double f_opt = checkpoint_overhead_fraction(t_opt, C, M);
  EXPECT_LT(f_opt, checkpoint_overhead_fraction(t_opt / 3, C, M));
  EXPECT_LT(f_opt, checkpoint_overhead_fraction(t_opt * 3, C, M));
  // At the optimum the two terms are equal: C/T = T/(2M).
  EXPECT_NEAR(C / t_opt, t_opt / (2 * M), 1e-12);
  EXPECT_DOUBLE_EQ(checkpoint_overhead_fraction(0, C, M), 0);
}

} // namespace
} // namespace mrpic::resil
