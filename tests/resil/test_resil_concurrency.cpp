// Concurrency contract of the fault layer (run under MRPIC_SANITIZE=thread
// as the `resil_concurrency_sanitized` ctest): once a FaultInjector's step
// is set, its const query surface — the surface SimCluster::step_cost hits,
// potentially from parallel sweep evaluations — is safe to hammer from many
// threads and agrees exactly with a single-threaded baseline.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/resil/fault_injector.hpp"

namespace mrpic::resil {
namespace {

FaultPlan busy_plan() {
  FaultPlan plan;
  plan.seed = 1234;
  plan.slowdowns.push_back({.rank = 1, .factor = 2.5, .from_step = 0, .to_step = 100});
  plan.message.drop_p = 0.2;
  plan.message.corrupt_p = 0.1;
  plan.message.delay_p = 0.1;
  plan.crashes.push_back({.rank = 3, .step = 50});
  return plan;
}

TEST(ResilConcurrency, ConstQueriesAreThreadSafeAndDeterministic) {
  FaultInjector inj(busy_plan());
  inj.set_step(7);

  constexpr int kOrdinals = 512;
  // Single-threaded baseline.
  std::vector<cluster::MessageFate> baseline(kOrdinals);
  for (int o = 0; o < kOrdinals; ++o) { baseline[o] = inj.message_fate(0, 2, 1024, o); }
  const double mult1 = inj.compute_multiplier(1);
  const double detect = inj.detection_time_s();

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 4; ++rep) {
        for (int o = t; o < kOrdinals; o += 1 + t % 3) {
          const auto f = inj.message_fate(0, 2, 1024, o);
          if (f.delivered != baseline[o].delivered || f.attempts != baseline[o].attempts ||
              f.extra_s != baseline[o].extra_s || f.corrupted != baseline[o].corrupted ||
              f.delayed != baseline[o].delayed) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (inj.compute_multiplier(1) != mult1 || inj.detection_time_s() != detect ||
            !inj.rank_alive(3) /* crash is at step 50, we are at 7 */ ||
            inj.first_dead_rank() != -1) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) { th.join(); }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ResilConcurrency, CrashStepQueriesFromManyThreads) {
  FaultInjector inj(busy_plan());
  inj.set_step(50); // rank 3 is dead this step

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int o = 0; o < 256; ++o) {
        if (inj.rank_alive(3) || inj.first_dead_rank() != 3 || inj.crash_due(50) != 3) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        const auto f = inj.message_fate(3, 0, 64, o);
        if (f.delivered || f.attempts != 1 + inj.detector().retry.max_retries) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) { th.join(); }
  EXPECT_EQ(mismatches.load(), 0);
}

} // namespace
} // namespace mrpic::resil
