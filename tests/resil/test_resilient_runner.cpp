// The tentpole acceptance test (registered as the `resil_smoke` ctest): a
// seeded rank crash mid-run on a laser-wakefield configuration recovers via
// checkpoint rollback + elastic box re-mapping and finishes BIT-IDENTICALLY
// to an uninterrupted run, with the fault/recovery events visible in the
// rank recorder, the Chrome trace and the metrics.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <sstream>

#include "src/obs/trace.hpp"
#include "src/resil/resilient_runner.hpp"

namespace mrpic::resil {
namespace {

using namespace mrpic::constants;

constexpr int kTotalSteps = 30;
constexpr int kCrashStep = 17;
constexpr int kCrashRank = 2;
constexpr int kCkptInterval = 10;

// A small laser-wakefield run on a 4-rank simulated cluster: laser + plasma
// + PML + moving window (no MR patch: a rollback must not cross a patch
// lifecycle boundary, see ResilientRunner's header).
std::unique_ptr<core::Simulation<2>> build_lwfa() {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(95, 31));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(9.6e-6, 3.2e-6);
  cfg.periodic = {false, true};
  cfg.use_pml = true;
  cfg.pml.npml = 6;
  cfg.max_grid_size = IntVect2(24, 16); // 8 boxes over 4 ranks
  cfg.shape_order = 2;
  cfg.nranks = 4;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e24);
  inj.ppc = IntVect2(2, 1);
  inj.temperature_ev = 20.0;
  sim->add_species(particles::Species::electron(), inj);

  laser::LaserConfig lc;
  lc.a0 = 1.5;
  lc.waist = 1.2e-6;
  lc.duration = 5e-15;
  lc.t_peak = 8e-15;
  lc.x_antenna = 1.0e-6;
  lc.center = {1.6e-6, 0};
  sim->add_laser(lc);

  sim->set_moving_window(0, c, /*start_time=*/10e-15);
  sim->enable_cluster_obs();
  sim->init();
  return sim;
}

bool fields_identical(const MultiFab<2>& a, const MultiFab<2>& b) {
  if (a.num_fabs() != b.num_fabs()) { return false; }
  for (int m = 0; m < a.num_fabs(); ++m) {
    if (a.fab(m).size() != b.fab(m).size()) { return false; }
    for (std::size_t i = 0; i < a.fab(m).size(); ++i) {
      if (a.fab(m).data()[i] != b.fab(m).data()[i]) { return false; }
    }
  }
  return true;
}

bool particles_identical(const particles::ParticleContainer<2>& a,
                         const particles::ParticleContainer<2>& b) {
  if (a.num_tiles() != b.num_tiles()) { return false; }
  for (int t = 0; t < a.num_tiles(); ++t) {
    const auto& ta = a.tile(t);
    const auto& tb = b.tile(t);
    if (ta.size() != tb.size()) { return false; }
    for (std::size_t p = 0; p < ta.size(); ++p) {
      for (int d = 0; d < 2; ++d) {
        if (ta.x[d][p] != tb.x[d][p]) { return false; }
      }
      for (int cc = 0; cc < 3; ++cc) {
        if (ta.u[cc][p] != tb.u[cc][p]) { return false; }
      }
      if (ta.w[p] != tb.w[p]) { return false; }
    }
  }
  return true;
}

typename ResilientRunner<2>::Config crash_config(const std::string& path) {
  typename ResilientRunner<2>::Config cfg;
  cfg.total_steps = kTotalSteps;
  cfg.checkpoint_path = path;
  cfg.policy.mode = CheckpointMode::Periodic;
  cfg.policy.interval_steps = kCkptInterval;
  cfg.plan.crashes.push_back({.rank = kCrashRank, .step = kCrashStep});
  return cfg;
}

TEST(ResilSmoke, CrashRecoversBitIdenticallyToUninterruptedRun) {
  const std::string path = "resil_smoke_ckpt.bin";

  // Uninterrupted reference.
  auto ref = build_lwfa();
  ref->run(kTotalSteps);

  // Crashed-and-recovered run.
  ResilientRunner<2> runner(build_lwfa, crash_config(path));
  const auto rep = runner.run();

  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.crashes, 1);
  EXPECT_EQ(rep.recoveries, 1);
  EXPECT_EQ(rep.final_nranks, 3); // elastic shrink: 4 -> 3
  // Crash at step 17 rolls back to the periodic checkpoint at step 10.
  EXPECT_EQ(rep.replayed_steps, kCrashStep + 1 - kCkptInterval);
  EXPECT_EQ(rep.steps_run, kTotalSteps + rep.replayed_steps);
  EXPECT_GT(rep.detection_s, 0);
  EXPECT_GE(rep.checkpoints_written, 3); // step 0 + periodic fires

  auto& sim = runner.sim();
  EXPECT_EQ(sim.step_count(), kTotalSteps);
  EXPECT_EQ(sim.config().nranks, 3);
  EXPECT_EQ(sim.dist_map().nranks(), 3);

  // The physics must not know the cluster crashed.
  EXPECT_DOUBLE_EQ(sim.time(), ref->time());
  EXPECT_TRUE(fields_identical(sim.fields().E(), ref->fields().E()));
  EXPECT_TRUE(fields_identical(sim.fields().B(), ref->fields().B()));
  EXPECT_TRUE(fields_identical(sim.fields().J(), ref->fields().J()));
  EXPECT_TRUE(fields_identical(sim.domain_pml()->split_fab(),
                               ref->domain_pml()->split_fab()));
  EXPECT_TRUE(particles_identical(sim.species_level0(0), ref->species_level0(0)));
  EXPECT_DOUBLE_EQ(sim.geom().prob_lo()[0], ref->geom().prob_lo()[0]);
  std::remove(path.c_str());
}

TEST(ResilSmoke, RecoveryEventsVisibleInRecorderTraceAndMetrics) {
  const std::string path = "resil_smoke_obs.bin";
  ResilientRunner<2> runner(build_lwfa, crash_config(path));
  const auto rep = runner.run();
  ASSERT_TRUE(rep.completed);
  auto& sim = runner.sim();

  // Rank recorder: the whole protocol is on the timeline.
  std::set<std::string> kinds;
  for (const auto& ev : sim.rank_recorder().fault_events()) { kinds.insert(ev.kind); }
  for (const char* k : {"crash", "detect", "rollback", "remap", "replay", "checkpoint"}) {
    EXPECT_TRUE(kinds.count(k)) << "missing fault event kind: " << k;
  }
  for (const auto& ev : sim.rank_recorder().fault_events()) {
    if (ev.kind == "crash") {
      EXPECT_EQ(ev.step, kCrashStep);
      EXPECT_EQ(ev.rank, kCrashRank);
    }
    if (ev.kind == "rollback") { EXPECT_EQ(ev.step, kCkptInterval); }
  }

  // Chrome trace: fault instant events rendered on the rank lanes.
  std::ostringstream trace;
  obs::write_chrome_trace(sim.profiler().trace_events(), sim.rank_recorder(), trace);
  const std::string json = trace.str();
  for (const char* needle :
       {"\"name\":\"crash\"", "\"name\":\"rollback\"", "\"name\":\"remap\"",
        "\"cat\":\"fault\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // Metrics: counters for the crash, the recovery and the replayed steps.
  std::ostringstream jsonl;
  sim.metrics().write_jsonl(jsonl);
  const std::string metrics = jsonl.str();
  for (const char* needle : {"resil_crashes", "resil_recoveries", "resil_replayed_steps",
                             "checkpoints", "cluster_failed_rank"}) {
    EXPECT_NE(metrics.find(needle), std::string::npos) << needle;
  }
  // Recovery happens between step brackets, so the *_total gauges (not the
  // per-step counter deltas) carry the actual values in the records.
  for (const char* needle :
       {"\"resil_crashes_total\":1", "\"resil_recoveries_total\":1",
        "\"resil_replayed_steps_total\":8"}) {
    EXPECT_NE(metrics.find(needle), std::string::npos) << needle;
  }
  std::remove(path.c_str());
}

TEST(ResilSmoke, NoFaultPlanRunsStraightThrough) {
  const std::string path = "resil_smoke_clean.bin";
  typename ResilientRunner<2>::Config cfg = crash_config(path);
  cfg.plan.crashes.clear();
  cfg.total_steps = 12;

  ResilientRunner<2> runner(build_lwfa, cfg);
  const auto rep = runner.run();
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.crashes, 0);
  EXPECT_EQ(rep.steps_run, 12);
  EXPECT_EQ(rep.replayed_steps, 0);
  EXPECT_EQ(rep.final_nranks, 4);
  EXPECT_EQ(rep.checkpoints_written, 2); // step 0 + the periodic fire at 10
  std::remove(path.c_str());
}

} // namespace
} // namespace mrpic::resil
