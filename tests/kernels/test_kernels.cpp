#include <gtest/gtest.h>

#include <cmath>

#include "src/kernels/optimized_kernels.hpp"
#include "src/kernels/reference_kernels.hpp"

namespace mrpic::kernels {
namespace {

// The optimized (grouped/transposed) kernels must produce the same numbers
// as the reference per-particle kernels — the paper's optimization is a
// restructuring, not an approximation.

template <typename T>
void setup(KernelFields<T>& f, KernelParticles<T>& p, int n, int ppc) {
  f.resize(n, 4);
  f.randomize_eb(1234, T(1e9));
  f.zero_j();
  p.init_uniform(n, ppc, 999, static_cast<T>(1e7));
}

template <typename T>
void expect_gather_match(T tol) {
  KernelFields<T> f;
  KernelParticles<T> pr, po;
  setup(f, pr, 8, 4);
  setup(f, po, 8, 4); // same seed -> identical particles
  gather_reference(pr, f);
  gather_optimized(po, f);
  T worst = 0;
  for (std::size_t i = 0; i < pr.size(); ++i) {
    worst = std::max(worst, std::abs(pr.exp_[i] - po.exp_[i]));
    worst = std::max(worst, std::abs(pr.eyp[i] - po.eyp[i]));
    worst = std::max(worst, std::abs(pr.ezp[i] - po.ezp[i]));
    worst = std::max(worst, std::abs(pr.bxp[i] - po.bxp[i]));
    worst = std::max(worst, std::abs(pr.byp[i] - po.byp[i]));
    worst = std::max(worst, std::abs(pr.bzp[i] - po.bzp[i]));
  }
  EXPECT_LT(worst, tol);
}

TEST(Kernels, GatherOptimizedMatchesReferenceDouble) { expect_gather_match<double>(1e-5); }
// Float: different summation order + the 5-tap staggered window accumulate
// O(1e-6) relative differences on 1e9-amplitude fields.
TEST(Kernels, GatherOptimizedMatchesReferenceFloat) { expect_gather_match<float>(2e3f); }

template <typename T>
void expect_deposit_match(T rel_tol) {
  KernelFields<T> fr, fo;
  KernelParticles<T> p;
  setup(fr, p, 8, 4);
  fo = fr;
  fo.zero_j();
  fr.zero_j();
  const T qf = T(1e-19);
  deposit_reference(p, fr, qf);
  deposit_optimized(p, fo, qf);
  T scale = 0;
  for (const auto v : fr.jx.data) { scale = std::max(scale, std::abs(v)); }
  ASSERT_GT(scale, T(0));
  T worst = 0;
  const std::pair<const Field3<T>*, const Field3<T>*> pairs[3] = {
      {&fr.jx, &fo.jx}, {&fr.jy, &fo.jy}, {&fr.jz, &fo.jz}};
  for (const auto& [ref, opt] : pairs) {
    for (std::size_t i = 0; i < ref->data.size(); ++i) {
      worst = std::max(worst, std::abs(ref->data[i] - opt->data[i]));
    }
  }
  EXPECT_LT(worst, rel_tol * scale);
}

TEST(Kernels, DepositOptimizedMatchesReferenceDouble) { expect_deposit_match<double>(1e-10); }
TEST(Kernels, DepositOptimizedMatchesReferenceFloat) { expect_deposit_match<float>(1e-3f); }

TEST(Kernels, DepositTotalsConserved) {
  // Sum of all deposited Jx equals sum over particles of amp_x regardless of
  // kernel (shape weights sum to one).
  KernelFields<double> f;
  KernelParticles<double> p;
  setup(f, p, 8, 2);
  deposit_optimized(p, f, 1.0);
  double total = 0;
  for (double v : f.jx.data) { total += v; }
  double expected = 0;
  const double c = mrpic::constants::c;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double u2 = p.ux[i] * p.ux[i] + p.uy[i] * p.uy[i] + p.uz[i] * p.uz[i];
    expected += p.w[i] * p.ux[i] / std::sqrt(1 + u2 / (c * c));
  }
  EXPECT_NEAR(total, expected, std::abs(expected) * 1e-10 + 1e-12);
}

class NgrpSweep : public ::testing::TestWithParam<int> {};

TEST_P(NgrpSweep, GroupSizeDoesNotChangeResults) {
  // The paper tunes N_grp in {32, 64, 128}; results must be identical.
  const int ngrp = GetParam();
  KernelFields<double> f;
  KernelParticles<double> p1, p2;
  setup(f, p1, 8, 8);
  setup(f, p2, 8, 8);
  gather_optimized(p1, f, ngrp);
  gather_optimized(p2, f, default_ngrp);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.exp_[i], p2.exp_[i]);
    EXPECT_DOUBLE_EQ(p1.bzp[i], p2.bzp[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NgrpSweep, ::testing::Values(8, 32, 64, 128));

TEST(Kernels, InitUniformIsCellSorted) {
  KernelParticles<double> p;
  p.init_uniform(4, 3, 42, 0.0);
  EXPECT_EQ(p.size(), 4u * 4u * 4u * 3u);
  // cell-major: the linearized cell index never decreases.
  auto cell_of = [&](std::size_t i) {
    return static_cast<int>(p.x[i]) + 4 * (static_cast<int>(p.y[i]) +
                                           4 * static_cast<int>(p.z[i]));
  };
  for (std::size_t i = 1; i < p.size(); ++i) { EXPECT_LE(cell_of(i - 1), cell_of(i)); }
}

TEST(Kernels, FlopEstimatesSane) {
  // The optimization is a restructuring for vectorization and memory reuse,
  // not a flop reduction (the 5-tap staggered windows even add a few ops);
  // the counts just need to be positive and of the same magnitude.
  EXPECT_GT(gather_reference_flops_per_particle(), 0);
  EXPECT_GT(deposit_reference_flops_per_particle(), 0);
  EXPECT_GT(gather_optimized_flops_per_particle(), 0);
  EXPECT_LT(gather_optimized_flops_per_particle(), 3 * gather_reference_flops_per_particle());
  EXPECT_GT(gather_optimized_flops_per_particle(), gather_reference_flops_per_particle() / 3);
}

} // namespace
} // namespace mrpic::kernels
