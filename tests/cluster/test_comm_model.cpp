// Isolation tests for the alpha-beta wire model (cluster::CommModel) that
// every simulated-cluster cost rests on. The SimCluster-level behaviour
// (halo pairing, rank accounting) is covered in test_sim_cluster.cpp.

#include <gtest/gtest.h>

#include "src/cluster/comm_model.hpp"

namespace mrpic::cluster {
namespace {

TEST(CommModel, MessageTimes) {
  CommModel cm;
  cm.latency_s = 1e-6;
  cm.bandwidth_Bps = 1e9;
  EXPECT_DOUBLE_EQ(cm.message_time(1000, false), 1e-6 + 1e-6);
  EXPECT_LT(cm.message_time(1000, true), cm.message_time(1000, false));
}

TEST(CommModel, LatencyAndBandwidthSeparate) {
  CommModel cm;
  cm.latency_s = 5e-6;
  cm.bandwidth_Bps = 2e9;
  // Inter-rank: latency floor plus linear transfer term.
  EXPECT_DOUBLE_EQ(cm.message_time(0, false), 5e-6);
  const double t1 = cm.message_time(1 << 20, false);
  const double t2 = cm.message_time(2 << 20, false);
  EXPECT_DOUBLE_EQ(t2 - t1, double(1 << 20) / 2e9);
}

TEST(CommModel, ZeroByteMessages) {
  CommModel cm;
  // A zero-byte inter-rank message still pays the wire latency; the
  // same-rank copy of nothing is free.
  EXPECT_DOUBLE_EQ(cm.message_time(0, false), cm.latency_s);
  EXPECT_DOUBLE_EQ(cm.message_time(0, true), 0.0);
}

TEST(CommModel, SameRankCopiesAreBandwidthOnly) {
  CommModel cm;
  cm.intranode_Bps = 100e9;
  const std::int64_t bytes = 1 << 24;
  EXPECT_DOUBLE_EQ(cm.message_time(bytes, true), double(bytes) / 100e9);
  // No latency component: halving the bytes halves the time exactly.
  EXPECT_DOUBLE_EQ(cm.message_time(bytes / 2, true),
                   cm.message_time(bytes, true) / 2);
}

TEST(CommModel, AllreduceGrowsLogarithmically) {
  CommModel cm;
  const double t2 = cm.allreduce_time(2, 8);
  const double t16 = cm.allreduce_time(16, 8);
  const double t1024 = cm.allreduce_time(1024, 8);
  EXPECT_DOUBLE_EQ(t16, 4 * t2);
  EXPECT_DOUBLE_EQ(t1024, 10 * t2);
  EXPECT_DOUBLE_EQ(cm.allreduce_time(1, 8), 0.0);
}

} // namespace
} // namespace mrpic::cluster
