#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "src/cluster/sim_cluster.hpp"
#include "src/obs/rank_recorder.hpp"

// CommModel isolation tests live in tests/cluster/test_comm_model.cpp.

namespace mrpic::cluster {
namespace {

using dist::DistributionMapping;
using dist::Strategy;

mrpic::BoxArray<3> cube_ba(int n, int box) {
  return mrpic::BoxArray<3>::decompose(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(n - 1, n - 1, n - 1)), box);
}

TEST(SimCluster, ComputeIsMaxOverRanks) {
  const auto ba = cube_ba(32, 16); // 8 boxes
  SimCluster cluster(2);
  std::vector<Real> costs(8, 1.0);
  costs[0] = 5.0;
  const auto dm = DistributionMapping::make(ba, 2, Strategy::RoundRobin);
  const auto c = cluster.step_cost(ba, dm, costs, 6, 2);
  // rank 0 holds boxes 0,2,4,6: 5+1+1+1 = 8.
  EXPECT_DOUBLE_EQ(c.compute_s, 8.0);
  EXPECT_GT(c.imbalance, 1.0);
}

TEST(SimCluster, SingleRankHasNoNetworkTraffic) {
  const auto ba = cube_ba(32, 16);
  SimCluster cluster(1);
  const auto dm = DistributionMapping::make(ba, 1, Strategy::RoundRobin);
  const auto c = cluster.step_cost(ba, dm, std::vector<Real>(8, 1.0), 6, 2);
  EXPECT_EQ(c.num_messages, 0);
  EXPECT_EQ(c.total_bytes, 0);
}

TEST(SimCluster, SfcReducesTrafficVsRoundRobin) {
  // Locality-aware placement must cut inter-rank bytes on a uniform grid.
  const auto ba = cube_ba(64, 16); // 64 boxes
  SimCluster cluster(8);
  const std::vector<Real> costs(64, 1.0);
  const auto dm_sfc = DistributionMapping::make(ba, 8, Strategy::SpaceFillingCurve);
  const auto dm_rr = DistributionMapping::make(ba, 8, Strategy::RoundRobin);
  const auto c_sfc = cluster.step_cost(ba, dm_sfc, costs, 6, 2);
  const auto c_rr = cluster.step_cost(ba, dm_rr, costs, 6, 2);
  EXPECT_LT(c_sfc.total_bytes, c_rr.total_bytes);
  EXPECT_LT(c_sfc.comm_s, c_rr.comm_s);
}

TEST(SimCluster, KnapsackWinsUnderImbalance) {
  // A hot region (dense plasma slab): knapsack's balanced compute beats
  // SFC's locality when compute dominates — the mechanism behind the
  // paper's dynamic load balancing gains.
  const auto ba = cube_ba(64, 16);
  SimCluster cluster(8);
  std::vector<Real> costs(64, 0.1);
  for (int i = 0; i < 8; ++i) { costs[i] = 10.0; } // hot boxes cluster in space
  const auto dm_sfc = DistributionMapping::make(ba, 8, Strategy::SpaceFillingCurve);
  const auto dm_ks = DistributionMapping::make(ba, 8, Strategy::Knapsack, costs);
  const auto c_sfc = cluster.step_cost(ba, dm_sfc, costs, 6, 2);
  const auto c_ks = cluster.step_cost(ba, dm_ks, costs, 6, 2);
  EXPECT_LT(c_ks.total_s, c_sfc.total_s);
}

TEST(SimCluster, MessageCountScalesWithSurface) {
  const auto ba = cube_ba(64, 16);
  SimCluster cluster(64);
  const auto dm = DistributionMapping::make(ba, 64, Strategy::SpaceFillingCurve);
  const auto c = cluster.step_cost(ba, dm, std::vector<Real>(64, 1.0), 6, 2);
  // One box per rank: every box talks to up to 26 neighbors, each counted
  // once: between 3x64/2 (faces of a corner-heavy layout) and 26x64.
  EXPECT_GT(c.num_messages, 64);
  EXPECT_LT(c.num_messages, 26 * 64);
}

TEST(SimCluster, RecorderCapturesPerRankBreakdown) {
  const auto ba = cube_ba(32, 16); // 8 boxes
  SimCluster cluster(2);
  std::vector<Real> costs(8, 1.0);
  costs[0] = 5.0;
  const auto dm = DistributionMapping::make(ba, 2, Strategy::RoundRobin);
  obs::RankRecorder rec(2);
  rec.set_step(7);
  const auto c = cluster.step_cost(ba, dm, costs, 6, 2, 8, &rec);

  ASSERT_EQ(rec.steps().size(), 1u);
  const auto& bd = rec.steps()[0];
  EXPECT_EQ(bd.step, 7);
  ASSERT_EQ(bd.ranks.size(), 2u);

  // Per-rank compute reassembles the aggregate StepCost exactly.
  double compute_sum = 0;
  int box_sum = 0;
  for (const auto& r : bd.ranks) {
    compute_sum += r.compute_s;
    box_sum += r.boxes;
  }
  EXPECT_DOUBLE_EQ(compute_sum, 12.0); // 5 + 7x1
  EXPECT_EQ(box_sum, 8);
  EXPECT_DOUBLE_EQ(bd.max_compute_s(), c.compute_s);
  // The acceptance criterion: identical arithmetic, identical rank set.
  EXPECT_NEAR(bd.imbalance(), c.imbalance, 1e-12);
  double max_comm = 0;
  for (const auto& r : bd.ranks) { max_comm = std::max(max_comm, r.comm_s); }
  EXPECT_DOUBLE_EQ(max_comm, c.comm_s);
}

TEST(SimCluster, RecorderMessageLogMatchesAggregates) {
  const auto ba = cube_ba(64, 16); // 64 boxes
  CommModel cm;
  SimCluster cluster(8, cm);
  const auto dm = DistributionMapping::make(ba, 8, Strategy::SpaceFillingCurve);
  obs::RankRecorder rec(8);
  rec.set_step(3);
  const auto c = cluster.step_cost(ba, dm, std::vector<Real>(64, 1.0), 6, 2, 8, &rec);

  ASSERT_EQ(rec.messages().size(), static_cast<std::size_t>(c.num_messages));
  std::int64_t bytes = 0, sent = 0, recv = 0;
  for (const auto& m : rec.messages()) {
    EXPECT_NE(m.src_rank, m.dst_rank); // same-rank copies are not messages
    EXPECT_EQ(m.step, 3);
    EXPECT_GT(m.bytes, 0);
    EXPECT_DOUBLE_EQ(m.latency_s, cm.latency_s);
    EXPECT_DOUBLE_EQ(m.time_s(), cm.message_time(m.bytes, false));
    bytes += m.bytes;
  }
  EXPECT_EQ(bytes, c.total_bytes);
  for (const auto& r : rec.steps()[0].ranks) {
    sent += r.bytes_sent;
    recv += r.bytes_recv;
  }
  EXPECT_EQ(sent, c.total_bytes);
  EXPECT_EQ(recv, c.total_bytes);
}

TEST(SimCluster, RecorderSingleRankLogsNoMessages) {
  const auto ba = cube_ba(32, 16);
  SimCluster cluster(1);
  const auto dm = DistributionMapping::make(ba, 1, Strategy::RoundRobin);
  obs::RankRecorder rec(1);
  cluster.step_cost(ba, dm, std::vector<Real>(8, 1.0), 6, 2, 8, &rec);
  EXPECT_TRUE(rec.messages().empty());
  ASSERT_EQ(rec.steps().size(), 1u);
  // Intra-rank halo copies still cost bandwidth time on the one rank.
  EXPECT_GT(rec.steps()[0].ranks[0].comm_s, 0.0);
  EXPECT_EQ(rec.steps()[0].ranks[0].messages, 0);
}

} // namespace
} // namespace mrpic::cluster
