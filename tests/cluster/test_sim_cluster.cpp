#include <gtest/gtest.h>

#include "src/cluster/sim_cluster.hpp"

namespace mrpic::cluster {
namespace {

using dist::DistributionMapping;
using dist::Strategy;

mrpic::BoxArray<3> cube_ba(int n, int box) {
  return mrpic::BoxArray<3>::decompose(
      mrpic::Box3(mrpic::IntVect3(0, 0, 0), mrpic::IntVect3(n - 1, n - 1, n - 1)), box);
}

TEST(CommModel, MessageTimes) {
  CommModel cm;
  cm.latency_s = 1e-6;
  cm.bandwidth_Bps = 1e9;
  EXPECT_DOUBLE_EQ(cm.message_time(1000, false), 1e-6 + 1e-6);
  EXPECT_LT(cm.message_time(1000, true), cm.message_time(1000, false));
}

TEST(CommModel, AllreduceGrowsLogarithmically) {
  CommModel cm;
  const double t2 = cm.allreduce_time(2, 8);
  const double t16 = cm.allreduce_time(16, 8);
  const double t1024 = cm.allreduce_time(1024, 8);
  EXPECT_DOUBLE_EQ(t16, 4 * t2);
  EXPECT_DOUBLE_EQ(t1024, 10 * t2);
  EXPECT_DOUBLE_EQ(cm.allreduce_time(1, 8), 0.0);
}

TEST(SimCluster, ComputeIsMaxOverRanks) {
  const auto ba = cube_ba(32, 16); // 8 boxes
  SimCluster cluster(2);
  std::vector<Real> costs(8, 1.0);
  costs[0] = 5.0;
  const auto dm = DistributionMapping::make(ba, 2, Strategy::RoundRobin);
  const auto c = cluster.step_cost(ba, dm, costs, 6, 2);
  // rank 0 holds boxes 0,2,4,6: 5+1+1+1 = 8.
  EXPECT_DOUBLE_EQ(c.compute_s, 8.0);
  EXPECT_GT(c.imbalance, 1.0);
}

TEST(SimCluster, SingleRankHasNoNetworkTraffic) {
  const auto ba = cube_ba(32, 16);
  SimCluster cluster(1);
  const auto dm = DistributionMapping::make(ba, 1, Strategy::RoundRobin);
  const auto c = cluster.step_cost(ba, dm, std::vector<Real>(8, 1.0), 6, 2);
  EXPECT_EQ(c.num_messages, 0);
  EXPECT_EQ(c.total_bytes, 0);
}

TEST(SimCluster, SfcReducesTrafficVsRoundRobin) {
  // Locality-aware placement must cut inter-rank bytes on a uniform grid.
  const auto ba = cube_ba(64, 16); // 64 boxes
  SimCluster cluster(8);
  const std::vector<Real> costs(64, 1.0);
  const auto dm_sfc = DistributionMapping::make(ba, 8, Strategy::SpaceFillingCurve);
  const auto dm_rr = DistributionMapping::make(ba, 8, Strategy::RoundRobin);
  const auto c_sfc = cluster.step_cost(ba, dm_sfc, costs, 6, 2);
  const auto c_rr = cluster.step_cost(ba, dm_rr, costs, 6, 2);
  EXPECT_LT(c_sfc.total_bytes, c_rr.total_bytes);
  EXPECT_LT(c_sfc.comm_s, c_rr.comm_s);
}

TEST(SimCluster, KnapsackWinsUnderImbalance) {
  // A hot region (dense plasma slab): knapsack's balanced compute beats
  // SFC's locality when compute dominates — the mechanism behind the
  // paper's dynamic load balancing gains.
  const auto ba = cube_ba(64, 16);
  SimCluster cluster(8);
  std::vector<Real> costs(64, 0.1);
  for (int i = 0; i < 8; ++i) { costs[i] = 10.0; } // hot boxes cluster in space
  const auto dm_sfc = DistributionMapping::make(ba, 8, Strategy::SpaceFillingCurve);
  const auto dm_ks = DistributionMapping::make(ba, 8, Strategy::Knapsack, costs);
  const auto c_sfc = cluster.step_cost(ba, dm_sfc, costs, 6, 2);
  const auto c_ks = cluster.step_cost(ba, dm_ks, costs, 6, 2);
  EXPECT_LT(c_ks.total_s, c_sfc.total_s);
}

TEST(SimCluster, MessageCountScalesWithSurface) {
  const auto ba = cube_ba(64, 16);
  SimCluster cluster(64);
  const auto dm = DistributionMapping::make(ba, 64, Strategy::SpaceFillingCurve);
  const auto c = cluster.step_cost(ba, dm, std::vector<Real>(64, 1.0), 6, 2);
  // One box per rank: every box talks to up to 26 neighbors, each counted
  // once: between 3x64/2 (faces of a corner-heavy layout) and 26x64.
  EXPECT_GT(c.num_messages, 64);
  EXPECT_LT(c.num_messages, 26 * 64);
}

} // namespace
} // namespace mrpic::cluster
