#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/dist/morton.hpp"

namespace mrpic::dist {
namespace {

TEST(Morton, Spread2BitsInterleave) {
  EXPECT_EQ(spread_bits_2(0b1), 0b1u);
  EXPECT_EQ(spread_bits_2(0b11), 0b101u);
  EXPECT_EQ(spread_bits_2(0b111), 0b10101u);
}

TEST(Morton, Spread3BitsInterleave) {
  EXPECT_EQ(spread_bits_3(0b1), 0b1u);
  EXPECT_EQ(spread_bits_3(0b11), 0b1001u);
  EXPECT_EQ(spread_bits_3(0b101), 0b1000001u);
}

TEST(Morton, Encode2DKnownValues) {
  EXPECT_EQ(morton_encode(0u, 0u), 0u);
  EXPECT_EQ(morton_encode(1u, 0u), 1u);
  EXPECT_EQ(morton_encode(0u, 1u), 2u);
  EXPECT_EQ(morton_encode(1u, 1u), 3u);
  EXPECT_EQ(morton_encode(2u, 2u), 12u);
}

TEST(Morton, Encode3DKnownValues) {
  EXPECT_EQ(morton_encode(1u, 0u, 0u), 1u);
  EXPECT_EQ(morton_encode(0u, 1u, 0u), 2u);
  EXPECT_EQ(morton_encode(0u, 0u, 1u), 4u);
  EXPECT_EQ(morton_encode(1u, 1u, 1u), 7u);
}

TEST(Morton, InjectiveOnGrid) {
  std::vector<std::uint64_t> keys;
  for (std::uint32_t y = 0; y < 16; ++y) {
    for (std::uint32_t x = 0; x < 16; ++x) { keys.push_back(morton_encode(x, y)); }
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(Morton, LocalityProperty) {
  // Points in the same quadrant of a 2^k x 2^k grid share high key bits:
  // the curve visits an entire quadrant before leaving it.
  const auto k00 = morton_encode(3u, 3u);   // quadrant (0,0) of 8x8
  const auto k10 = morton_encode(4u, 0u);   // quadrant (1,0)
  const auto k01 = morton_encode(0u, 4u);
  EXPECT_LT(k00, k10);
  EXPECT_LT(k10, k01);
}

} // namespace
} // namespace mrpic::dist
