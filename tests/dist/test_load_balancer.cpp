#include <gtest/gtest.h>

#include "src/dist/load_balancer.hpp"

namespace mrpic::dist {
namespace {

mrpic::BoxArray<2> grid_ba() {
  return mrpic::BoxArray<2>::decompose(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(63, 63)), 16); // 16 boxes
}

TEST(LoadBalancer, CostSmoothing) {
  LoadBalanceConfig cfg;
  cfg.cost_smoothing = 0.5;
  LoadBalancer lb(cfg);
  lb.record_costs({2.0, 4.0});
  EXPECT_DOUBLE_EQ(lb.costs()[0], 2.0);
  lb.record_costs({4.0, 4.0});
  EXPECT_DOUBLE_EQ(lb.costs()[0], 3.0); // (2+4)/2
  EXPECT_DOUBLE_EQ(lb.costs()[1], 4.0);
}

TEST(LoadBalancer, TriggersOnImbalance) {
  const auto ba = grid_ba();
  LoadBalanceConfig cfg;
  cfg.imbalance_threshold = 1.1;
  LoadBalancer lb(cfg);
  const auto dm = DistributionMapping::make(ba, 4, Strategy::RoundRobin);

  lb.record_costs(std::vector<Real>(16, 1.0));
  EXPECT_FALSE(lb.should_rebalance(dm)); // perfectly balanced

  std::vector<Real> skewed(16, 1.0);
  skewed[0] = 20.0;
  skewed[4] = 20.0; // both land on rank 0 under round robin
  lb.record_costs(skewed);
  EXPECT_TRUE(lb.should_rebalance(dm));

  const auto dm2 = lb.rebalance(ba, 4);
  EXPECT_LT(dm2.imbalance(lb.costs()), dm.imbalance(lb.costs()));
}

TEST(LoadBalancer, RebalanceImprovesImbalance) {
  const auto ba = grid_ba();
  LoadBalanceConfig cfg;
  cfg.strategy = Strategy::Knapsack;
  LoadBalancer lb(cfg);
  std::vector<Real> costs(16);
  for (int i = 0; i < 16; ++i) { costs[i] = (i < 4) ? 10.0 : 1.0; }
  lb.record_costs(costs);
  const auto dm_sfc = DistributionMapping::make(ba, 4, Strategy::SpaceFillingCurve);
  const auto dm_new = lb.rebalance(ba, 4);
  EXPECT_LE(dm_new.imbalance(costs), dm_sfc.imbalance(costs) + 1e-12);
}

TEST(ColocatePml, PmlBoxesFollowNearestParent) {
  // Parent: two boxes left/right on ranks 0 and 1. PML strips at the far
  // left and far right must co-locate with the nearest parent box.
  const mrpic::BoxArray<2> parents(std::vector<mrpic::Box2>{
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 63)),
      mrpic::Box2(mrpic::IntVect2(32, 0), mrpic::IntVect2(63, 63))});
  const DistributionMapping parent_dm(std::vector<int>{0, 1}, 2);
  const mrpic::BoxArray<2> pml(std::vector<mrpic::Box2>{
      mrpic::Box2(mrpic::IntVect2(-8, 0), mrpic::IntVect2(-1, 63)),
      mrpic::Box2(mrpic::IntVect2(64, 0), mrpic::IntVect2(71, 63))});
  const auto dm = colocate_pml(pml, parents, parent_dm);
  EXPECT_EQ(dm.rank(0), 0);
  EXPECT_EQ(dm.rank(1), 1);
}

} // namespace
} // namespace mrpic::dist
