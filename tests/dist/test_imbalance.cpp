#include <gtest/gtest.h>

#include <vector>

#include "src/amr/box_array.hpp"
#include "src/dist/distribution_mapping.hpp"
#include "src/dist/imbalance.hpp"
#include "src/obs/rank_recorder.hpp"

namespace mrpic::dist {
namespace {

// The one imbalance metric (max/mean load, λ of the paper's Sec. V.C load
// balancing) shared by DistributionMapping, LoadBalancer, SimCluster and the
// obs layer. These tests pin the helper's edge cases and that every consumer
// agrees with it bit-for-bit.

TEST(Imbalance, MaxOverMeanBasics) {
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<double>{}), 1.0);      // empty
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<double>{0.0, 0.0}), 1.0); // no load
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<double>{2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<double>{3.0, 1.0}), 1.5);
  // One loaded rank among n: lambda = n.
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<double>{4.0, 0.0, 0.0, 0.0}), 4.0);
}

TEST(Imbalance, WorksAcrossArithmeticTypes) {
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<float>{3.0f, 1.0f}), 1.5);
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<int>{3, 1}), 1.5);
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<long long>{6, 2, 1}), 2.0);
}

TEST(Imbalance, DistributionMappingAgreesWithHelper) {
  const Box3 domain(IntVect3(0, 0, 0), IntVect3(63, 63, 63));
  const auto ba = BoxArray<3>::decompose(domain, 16); // 64 boxes
  const auto dm = DistributionMapping::make(ba, 4, Strategy::RoundRobin);
  std::vector<Real> costs(ba.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = static_cast<Real>(1 + (i % 7));
  }
  const auto loads = dm.rank_loads(costs);
  EXPECT_DOUBLE_EQ(static_cast<double>(dm.imbalance(costs)),
                   max_over_mean(loads));
}

TEST(Imbalance, RankRecorderBreakdownAgreesWithHelper) {
  obs::RankStepBreakdown bd;
  bd.ranks.resize(3);
  bd.ranks[0].compute_s = 3.0;
  bd.ranks[1].compute_s = 1.0;
  bd.ranks[2].compute_s = 2.0;
  EXPECT_DOUBLE_EQ(bd.imbalance(),
                   max_over_mean(std::vector<double>{3.0, 1.0, 2.0}));
  EXPECT_DOUBLE_EQ(bd.imbalance(), 1.5);
}

} // namespace
} // namespace mrpic::dist
