#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "src/dist/knapsack.hpp"

namespace mrpic::dist {
namespace {

TEST(Knapsack, EqualWeightsPerfectBalance) {
  std::vector<Real> w(16, 1.0);
  const auto r = knapsack_partition(w, 4);
  EXPECT_DOUBLE_EQ(r.max_load, 4.0);
  EXPECT_DOUBLE_EQ(r.efficiency, 1.0);
  for (Real load : r.rank_loads) { EXPECT_DOUBLE_EQ(load, 4.0); }
}

TEST(Knapsack, AssignmentIsConsistentWithLoads) {
  std::vector<Real> w = {5, 1, 1, 1, 4, 2, 2};
  const auto r = knapsack_partition(w, 3);
  std::vector<Real> recomputed(3, 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_GE(r.assignment[i], 0);
    ASSERT_LT(r.assignment[i], 3);
    recomputed[r.assignment[i]] += w[i];
  }
  for (int k = 0; k < 3; ++k) { EXPECT_DOUBLE_EQ(recomputed[k], r.rank_loads[k]); }
}

TEST(Knapsack, NeverWorseThanSingleHeaviestItem) {
  // Lower bound on max load: max(total/n, heaviest item).
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  std::vector<Real> w(37);
  for (auto& v : w) { v = dist(rng); }
  const Real total = std::accumulate(w.begin(), w.end(), Real(0));
  const Real heaviest = *std::max_element(w.begin(), w.end());
  const auto r = knapsack_partition(w, 5);
  EXPECT_GE(r.max_load, std::max(total / 5, heaviest) - 1e-12);
  // LPT guarantee: within 4/3 of optimum <= 4/3 * (lower bound + heaviest).
  EXPECT_LE(r.max_load, (total / 5 + heaviest) * 4.0 / 3.0);
}

TEST(Knapsack, SkewedWeightsBeatRoundRobin) {
  // One rank would get the two heaviest items under round robin.
  std::vector<Real> w = {10, 1, 10, 1, 10, 1, 10, 1};
  const auto r = knapsack_partition(w, 4);
  EXPECT_NEAR(r.max_load, 11.0, 1e-12);
  // round robin: rank0 gets {10,10} = 20.
  EXPECT_LT(r.max_load, 20.0);
}

TEST(Knapsack, MoreRanksThanItems) {
  std::vector<Real> w = {3, 2};
  const auto r = knapsack_partition(w, 5);
  EXPECT_DOUBLE_EQ(r.max_load, 3.0);
}

TEST(Knapsack, EmptyInput) {
  const auto r = knapsack_partition({}, 3);
  EXPECT_DOUBLE_EQ(r.max_load, 0.0);
  EXPECT_DOUBLE_EQ(r.efficiency, 1.0);
}

class KnapsackEfficiencySweep : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackEfficiencySweep, RandomWeightsReasonablyBalanced) {
  const int nranks = GetParam();
  std::mt19937_64 rng(42 + nranks);
  std::uniform_real_distribution<double> dist(0.5, 2.0);
  std::vector<Real> w(nranks * 8);
  for (auto& v : w) { v = dist(rng); }
  const auto r = knapsack_partition(w, nranks);
  // With 8 modestly skewed items per rank, LPT should balance within 10%.
  EXPECT_GT(r.efficiency, 0.9) << "nranks=" << nranks;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnapsackEfficiencySweep, ::testing::Values(2, 4, 8, 16, 32));

} // namespace
} // namespace mrpic::dist
