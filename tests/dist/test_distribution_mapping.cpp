#include <gtest/gtest.h>

#include "src/dist/distribution_mapping.hpp"

namespace mrpic::dist {
namespace {

mrpic::BoxArray<2> grid_ba(int n, int box) {
  return mrpic::BoxArray<2>::decompose(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1)), box);
}

TEST(DistributionMapping, RoundRobinCycles) {
  const auto ba = grid_ba(64, 16); // 16 boxes
  const auto dm = DistributionMapping::make(ba, 4, Strategy::RoundRobin);
  ASSERT_EQ(dm.size(), 16);
  for (int i = 0; i < dm.size(); ++i) { EXPECT_EQ(dm.rank(i), i % 4); }
}

TEST(DistributionMapping, AllStrategiesUseAllRanks) {
  const auto ba = grid_ba(64, 16);
  for (auto s : {Strategy::RoundRobin, Strategy::SpaceFillingCurve, Strategy::Knapsack}) {
    const auto dm = DistributionMapping::make(ba, 4, s);
    std::vector<int> seen(4, 0);
    for (int i = 0; i < dm.size(); ++i) {
      ASSERT_GE(dm.rank(i), 0);
      ASSERT_LT(dm.rank(i), 4);
      ++seen[dm.rank(i)];
    }
    for (int r = 0; r < 4; ++r) { EXPECT_GT(seen[r], 0) << to_string(s); }
  }
}

TEST(DistributionMapping, SfcBalancedWithUniformCosts) {
  const auto ba = grid_ba(64, 8); // 64 boxes
  const auto dm = DistributionMapping::make(ba, 8, Strategy::SpaceFillingCurve);
  const auto loads = dm.rank_loads(std::vector<Real>(64, 1.0));
  for (Real l : loads) { EXPECT_DOUBLE_EQ(l, 8.0); }
  EXPECT_DOUBLE_EQ(dm.imbalance(std::vector<Real>(64, 1.0)), 1.0);
}

TEST(DistributionMapping, SfcGroupsSpatially) {
  // With a 4x4 box grid on 4 ranks, the Z-curve assigns each 2x2 quadrant to
  // one rank: boxes sharing a rank must be close.
  const auto ba = grid_ba(64, 16); // 4x4 boxes
  const auto dm = DistributionMapping::make(ba, 4, Strategy::SpaceFillingCurve);
  for (int i = 0; i < ba.size(); ++i) {
    for (int j = i + 1; j < ba.size(); ++j) {
      if (dm.rank(i) != dm.rank(j)) { continue; }
      const auto ci = (ba[i].lo() + ba[i].hi());
      const auto cj = (ba[j].lo() + ba[j].hi());
      const int d = std::abs(ci[0] - cj[0]) + std::abs(ci[1] - cj[1]);
      EXPECT_LE(d, 2 * 32) << "rank-sharing boxes too far apart";
    }
  }
}

TEST(DistributionMapping, KnapsackHandlesSkewedCosts) {
  const auto ba = grid_ba(64, 16); // 16 boxes
  std::vector<Real> costs(16, 1.0);
  costs[0] = 16.0; // one hot box
  const auto dm_k = DistributionMapping::make(ba, 4, Strategy::Knapsack, costs);
  const auto dm_r = DistributionMapping::make(ba, 4, Strategy::RoundRobin, costs);
  EXPECT_LE(dm_k.imbalance(costs), dm_r.imbalance(costs));
  // Hot box alone saturates a rank: max load 16, mean (16+15)/4 = 7.75.
  EXPECT_NEAR(dm_k.imbalance(costs), 16.0 / 7.75, 0.05);
}

class StrategyImbalance : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategyImbalance, NoRankIsEmptyAndImbalanceFinite) {
  const auto ba = grid_ba(96, 12); // 64 boxes
  std::vector<Real> costs(ba.size());
  for (int i = 0; i < ba.size(); ++i) { costs[i] = 1.0 + (i % 5); }
  const auto dm = DistributionMapping::make(ba, 6, GetParam(), costs);
  const auto loads = dm.rank_loads(costs);
  for (Real l : loads) { EXPECT_GT(l, 0.0); }
  EXPECT_GE(dm.imbalance(costs), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyImbalance,
                         ::testing::Values(Strategy::RoundRobin,
                                           Strategy::SpaceFillingCurve,
                                           Strategy::Knapsack));

} // namespace
} // namespace mrpic::dist
