// perf_report — the automated attribution-report CLI over a recorder dump
// (the {"format":"mrpic-ranks"} JSON written by obs::write_recorder_json,
// e.g. lwfa_ranks.json from examples/laser_wakefield).
//
//   perf_report [options] RANKS.json
//
// Builds the step DAGs, extracts per-step critical paths (rank chain +
// compute/transfer/latency/resil composition), decomposes each step's
// parallel overhead into terms that sum to the loss exactly, and emits the
// report as Markdown and/or bench-kind "attribution" JSON (schema-checkable
// with `bench_compare --schema`).
//
// Options:
//   --title S     report title (default: the input file name)
//   --latency X   wire latency per message in seconds used for the
//                 latency/transfer split (default: Summit's net latency)
//   --machine M   machine whose latency to use instead (Table II name)
//   --top N       steps listed individually in the Markdown (default 5)
//   --md FILE     write the Markdown report here (default: stdout)
//   --json FILE   also write the attribution JSON here

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/obs/perf_report.hpp"
#include "src/obs/rank_recorder_io.hpp"
#include "src/perf/machine.hpp"

using namespace mrpic;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--title S] [--latency X | --machine M] [--top N] \\\n"
               "          [--md FILE] [--json FILE] RANKS.json\n",
               argv0);
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  obs::PerfReportOptions opt;
  opt.title.clear();
  opt.latency_s = perf::machine_by_name("Summit").net_latency_s;
  std::string md_path, json_path, input;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_report: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--title") {
      opt.title = need_value("--title");
    } else if (a == "--latency") {
      opt.latency_s = std::atof(need_value("--latency"));
    } else if (a == "--machine") {
      try {
        opt.latency_s = perf::machine_by_name(need_value("--machine")).net_latency_s;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "perf_report: %s\n", e.what());
        return 2;
      }
    } else if (a == "--top") {
      opt.top_steps = std::atoi(need_value("--top"));
    } else if (a == "--md") {
      md_path = need_value("--md");
    } else if (a == "--json") {
      json_path = need_value("--json");
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "perf_report: unknown option %s\n", a.c_str());
      return usage(argv[0]);
    } else if (input.empty()) {
      input = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) { return usage(argv[0]); }
  if (opt.title.empty()) { opt.title = "perf report: " + input; }

  obs::RankRecorder rec(0);
  try {
    rec = obs::read_recorder_file(input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_report: %s\n", e.what());
    return 2;
  }

  const auto report = obs::build_perf_report(rec, opt);
  if (!md_path.empty()) {
    if (!obs::write_markdown(report, md_path)) {
      std::fprintf(stderr, "perf_report: cannot write %s\n", md_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", md_path.c_str());
  } else {
    obs::write_markdown(report, std::cout);
  }
  if (!json_path.empty()) {
    if (!obs::write_json(report, json_path)) {
      std::fprintf(stderr, "perf_report: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
