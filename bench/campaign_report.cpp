// campaign_report — the multi-run campaign aggregator CLI (obs::campaign).
//
//   campaign_report CAMPAIGN_DIR [--out DIR] [--strict]
//
// CAMPAIGN_DIR holds one subdirectory per mrpic_run invocation (each with
// its run.json manifest; a bare single-run directory also works). The tool
// validates every manifest, joins each run's final metrics / beam-physics /
// memory summaries and its event timeline, prints the cross-run Markdown
// report to stdout and writes campaign_report.{md,json} into --out (default:
// the campaign directory). With --strict the exit code is nonzero when any
// manifest fails validation or any event timeline is out of order — the
// CI-gate mode.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/obs/campaign.hpp"

using namespace mrpic;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr, "usage: %s CAMPAIGN_DIR [--out DIR] [--strict]\n", prog);
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  std::string dir, outdir;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outdir = argv[++i];
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return usage(argv[0]);
    } else if (argv[i][0] != '-') {
      dir = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (dir.empty()) { return usage(argv[0]); }
  if (outdir.empty()) { outdir = dir; }

  obs::CampaignReport rep;
  try {
    rep = obs::scan_campaign(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_report: %s\n", e.what());
    return 1;
  }
  if (rep.runs.empty()) {
    std::fprintf(stderr, "campaign_report: no run.json found under %s\n", dir.c_str());
    return 1;
  }

  obs::write_campaign_markdown(rep, std::cout);

  const std::string md_path = outdir + "/campaign_report.md";
  const std::string json_path = outdir + "/campaign_report.json";
  if (!obs::write_campaign_markdown(rep, md_path) ||
      !obs::write_campaign_json(rep, json_path)) {
    std::fprintf(stderr, "campaign_report: cannot write into %s\n", outdir.c_str());
    return 1;
  }
  std::printf("\nwrote %s and %s\n", md_path.c_str(), json_path.c_str());

  if (strict) {
    const bool manifests_ok = rep.runs_valid() == rep.runs_total();
    bool monotone = true;
    for (const auto& r : rep.runs) { monotone = monotone && r.events_monotone; }
    if (!manifests_ok || !monotone) {
      std::fprintf(stderr,
                   "campaign_report: --strict: %d/%d manifests valid, timeline "
                   "ordering %s\n",
                   rep.runs_valid(), rep.runs_total(), monotone ? "ok" : "violated");
      return 1;
    }
  }
  return 0;
}
