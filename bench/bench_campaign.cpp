// Campaign-telemetry bench: (1) the cost of the per-run telemetry trio —
// run manifest (obs::RunContext), progress heartbeat at the driver's
// default 5-step cadence, and the durable event timeline — measured
// directly against the step loop of a thermal plasma sized so one step
// costs tens of milliseconds (the smallest step the telemetry budget is
// meaningful against: a production step is far larger, so the measured
// fraction is an upper bound), gated <= 1% of step time (the ISSUE 10
// overhead budget). The case is repeated and the best repetition is kept:
// the telemetry path is ~20 small file operations, so a single rep is at
// the mercy of transient filesystem latency from unrelated load (e.g. the
// preceding benches in bench_smoke), and min-over-reps is the standard
// noise-robust timing estimator; (2) a deterministic aggregation case:
// a synthetic three-run campaign (two scenarios, one aborted run) is
// materialized on disk through the same writer APIs the driver uses, then
// obs::scan_campaign joins it and the resulting counts / pooled percentiles
// are reported as exact columns.
//
// The aggregate columns and the overhead_ok verdict diff exactly against
// BENCH_campaign.json; the raw telemetry/step seconds and their ratio are
// host timing noise and are --ignore'd by bench_smoke.
//
// Run: ./bench_campaign [--json] [--steps N] [--outdir DIR]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/diag/output_dir.hpp"
#include "src/insitu/registry.hpp"
#include "src/obs/campaign.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/heartbeat.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/run_manifest.hpp"

using namespace mrpic;

namespace {

struct OverheadRecord {
  std::int64_t steps = 0;
  std::int64_t events = 0;
  std::int64_t heartbeat_writes = 0;
  double telemetry_s = 0;
  double step_s = 0;
  double overhead_frac = 0;
  bool overhead_ok = false;
};

struct AggregateRecord {
  std::int64_t runs = 0;
  std::int64_t valid = 0;
  std::int64_t completed = 0;
  std::int64_t aborted = 0;
  std::int64_t failed = 0;
  std::int64_t scenarios = 0;
  std::int64_t samples = 0;
  double step_p50_s = 0;
  double step_p99_s = 0;
  std::int64_t critical_events = 0;
  bool monotone_ok = false;
};

std::unique_ptr<core::Simulation<2>> make_sim(int n, int ppc) {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(n - 1, n - 1));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(n / 2);
  cfg.shape_order = 2;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = IntVect2(ppc, ppc);
  inj.temperature_ev = 50.0;
  sim->add_species(particles::Species::electron(), inj);
  return sim;
}

// Drive the real step loop with the full telemetry trio at the driver's
// default cadences, accumulating the telemetry wall time directly (no A/B
// runs, so the measurement is immune to run-to-run step noise).
OverheadRecord run_overhead_case(const std::string& dir, int steps) {
  std::filesystem::create_directories(dir);
  auto sim = make_sim(96, 4);  // ~150k particles: tens of ms per step
  sim->init();

  using clock = std::chrono::steady_clock;
  const auto timed = [](auto&& fn) {
    const auto t0 = clock::now();
    fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };

  OverheadRecord r;
  r.steps = steps;

  obs::EventLogConfig ecfg;
  ecfg.path = dir + "/bench_events.jsonl";
  auto elog = std::make_unique<obs::EventLog>(ecfg);

  obs::HeartbeatConfig hcfg;
  hcfg.path = dir + "/progress.json";
  hcfg.interval_steps = 5;  // the mrpic_run default cadence
  obs::ProgressHeartbeat hb(hcfg, "bench-campaign-overhead");
  hb.set_totals(steps, 0);

  obs::RunContext rc("bench-campaign-overhead", "bench_campaign",
                     dir + "/run.json");
  rc.add_artifact("events", ecfg.path);
  rc.add_artifact("progress", hcfg.path);

  r.telemetry_s += timed([&] {
    rc.start();
    elog->publish("lifecycle", "run_start", obs::EventSeverity::Info, -1);
  });
  sim->enable_event_log(elog.get());

  for (int i = 0; i < steps; ++i) {
    sim->step();
    r.telemetry_s += timed([&] {
      hb.update(sim->step_count(), sim->time(), "step");
      // Sparse in-loop events at a realistic checkpoint-ish rate.
      if (sim->step_count() % 10 == 0) {
        elog->publish("resil", "checkpoint", obs::EventSeverity::Info,
                      sim->step_count(), "", {{"cost_s", 0.0}});
      }
    });
  }
  r.telemetry_s += timed([&] {
    elog->publish("lifecycle", "run_end", obs::EventSeverity::Info,
                  sim->step_count(), obs::kRunStatusCompleted);
    hb.finalize(obs::kRunStatusCompleted, sim->step_count(), sim->time());
    rc.manifest().num_events = elog->num_events();
    rc.finalize(obs::kRunStatusCompleted, 0, sim->step_count(), sim->time());
  });

  r.events = elog->num_events();
  r.heartbeat_writes = hb.writes();
  for (const auto& [name, stats] : sim->profiler().flat_totals()) {
    if (name == "step") { r.step_s = stats.inclusive_s; }
  }
  r.overhead_frac = r.step_s > 0 ? r.telemetry_s / r.step_s : 0;
  r.overhead_ok = r.overhead_frac <= 0.01;
  return r;
}

OverheadRecord best_overhead_of(const std::string& dir, int steps, int reps) {
  OverheadRecord best;
  for (int rep = 0; rep < reps; ++rep) {
    const OverheadRecord r =
        run_overhead_case(dir + "/rep_" + std::to_string(rep), steps);
    if (rep == 0 || r.overhead_frac < best.overhead_frac) { best = r; }
  }
  return best;
}

// Materialize one synthetic run directory through the production writers:
// manifest + event timeline + metrics JSONL (+ insitu series).
void write_synthetic_run(const std::string& dir, const std::string& scenario,
                         const std::string& status, int exit_code,
                         const std::vector<double>& step_wall_s,
                         double energy_drift, double emit_ny, double peak_J,
                         bool critical_event) {
  std::filesystem::create_directories(dir);
  const std::string pfx = dir + "/" + scenario;

  obs::EventLogConfig ecfg;
  ecfg.path = pfx + "_events.jsonl";
  obs::EventLog elog(ecfg);
  elog.publish("lifecycle", "run_start", obs::EventSeverity::Info, -1, scenario);
  elog.publish("lifecycle", "init", obs::EventSeverity::Info, 0);
  elog.publish("rebalance", "remap", obs::EventSeverity::Info, 2, "",
               {{"imbalance_before", 1.4}, {"imbalance_after", 1.1}});
  if (critical_event) {
    elog.publish("health", "alert", obs::EventSeverity::Critical,
                 std::int64_t(step_wall_s.size()), "energy drift out of bounds",
                 {{"value", energy_drift}, {"abort", 1.0}});
    elog.publish("lifecycle", "abort", obs::EventSeverity::Critical,
                 std::int64_t(step_wall_s.size()), "energy drift out of bounds");
  } else {
    elog.publish("lifecycle", "run_end", obs::EventSeverity::Info,
                 std::int64_t(step_wall_s.size()), status);
  }

  obs::MetricsRegistry reg;
  for (std::size_t i = 0; i < step_wall_s.size(); ++i) {
    reg.begin_step(std::int64_t(i));
    reg.gauge("step_wall_s").set(step_wall_s[i]);
    reg.gauge("health_energy_drift_rate").set(energy_drift);
    reg.gauge("mem_total_high_water_bytes").set(1.5e6);
    reg.end_step();
  }
  reg.write_jsonl(pfx + "_metrics.jsonl");

  {
    insitu::Registry ireg;
    ireg.open_series(pfx + "_insitu.jsonl", false);
    ireg.add("beam", 1, [emit_ny](insitu::Record& rec) {
      rec.set("emit_ny_m_rad", emit_ny);
    });
    ireg.add("spectrum", 1, [peak_J](insitu::Record& rec) {
      rec.set("peak_energy_J", peak_J);
    });
    ireg.collect(std::int64_t(step_wall_s.size()), 1e-15, /*force=*/true);
  }

  obs::RunManifest m;
  m.run_id = std::filesystem::path(dir).filename().string();
  m.scenario = scenario;
  m.title = "synthetic " + scenario;
  m.spec_digest = "feedfacefeedface";
  m.status = status;
  m.exit_code = exit_code;
  m.reason = critical_event ? "energy drift out of bounds" : "";
  m.start_unix = 1700000000;
  m.end_unix = 1700000100;
  m.wall_s = 100;
  m.steps_done = std::int64_t(step_wall_s.size());
  m.sim_time_s = 1e-15;
  m.num_events = elog.num_events();
  m.num_alerts = critical_event ? 1 : 0;
  obs::fill_build_info(m);
  m.artifacts.push_back({"events", scenario + "_events.jsonl",
                         obs::file_size_bytes(ecfg.path)});
  m.artifacts.push_back({"metrics", scenario + "_metrics.jsonl",
                         obs::file_size_bytes(pfx + "_metrics.jsonl")});
  m.artifacts.push_back({"insitu", scenario + "_insitu.jsonl",
                         obs::file_size_bytes(pfx + "_insitu.jsonl")});
  obs::write_manifest_atomic(m, dir + "/run.json");
}

AggregateRecord run_aggregate_case(const std::string& campaign_dir) {
  std::vector<double> alpha1, alpha2, beta1;
  for (int i = 1; i <= 10; ++i) { alpha1.push_back(1e-3 * i); }
  for (int i = 1; i <= 10; ++i) { alpha2.push_back(2e-3 * i); }
  for (int i = 1; i <= 4; ++i) { beta1.push_back(5e-3 * i); }
  write_synthetic_run(campaign_dir + "/run_alpha_1", "alpha",
                      obs::kRunStatusCompleted, 0, alpha1, 1e-9, 1.2e-7, 1.6e-11,
                      false);
  write_synthetic_run(campaign_dir + "/run_alpha_2", "alpha",
                      obs::kRunStatusCompleted, 0, alpha2, 2e-9, 1.4e-7, 1.9e-11,
                      false);
  write_synthetic_run(campaign_dir + "/run_beta_1", "beta", obs::kRunStatusAborted,
                      1, beta1, 4e-3, 3.0e-7, 0.8e-11, true);

  const auto rep = obs::scan_campaign(campaign_dir);
  AggregateRecord a;
  a.runs = rep.runs_total();
  a.valid = rep.runs_valid();
  a.completed = rep.runs_with_status(obs::kRunStatusCompleted);
  a.aborted = rep.runs_with_status(obs::kRunStatusAborted);
  a.failed = rep.runs_with_status(obs::kRunStatusFailed);
  a.scenarios = std::int64_t(rep.scenarios.size());
  a.monotone_ok = true;
  for (const auto& r : rep.runs) {
    a.samples += std::int64_t(r.step_wall_samples.size());
    a.critical_events += r.num_critical;
    a.monotone_ok = a.monotone_ok && r.events_monotone;
  }
  for (const auto& st : rep.scenarios) {
    if (st.scenario == "alpha") {
      a.step_p50_s = st.step_p50_s;
      a.step_p99_s = st.step_p99_s;
    }
  }
  obs::write_campaign_markdown(rep, campaign_dir + "/campaign_report.md");
  obs::write_campaign_json(rep, campaign_dir + "/campaign_report.json");
  return a;
}

} // namespace

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  int steps = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    }
  }

  std::printf("campaign telemetry: per-run overhead + aggregator determinism\n\n");
  const auto oh = best_overhead_of(out.path("campaign_overhead"), steps, 3);
  std::printf("  overhead: %lld steps, %lld events, %lld heartbeat rewrites\n",
              static_cast<long long>(oh.steps), static_cast<long long>(oh.events),
              static_cast<long long>(oh.heartbeat_writes));
  std::printf("  telemetry %.3f ms vs step %.3f ms -> %.4f%% of step time [%s]\n",
              oh.telemetry_s * 1e3, oh.step_s * 1e3, 100 * oh.overhead_frac,
              oh.overhead_ok ? "ok" : "FAIL");

  const auto ag = run_aggregate_case(out.path("campaign_synth"));
  std::printf("\n  aggregate: %lld runs (%lld valid), %lld completed / %lld aborted "
              "/ %lld failed, %lld scenarios\n",
              static_cast<long long>(ag.runs), static_cast<long long>(ag.valid),
              static_cast<long long>(ag.completed), static_cast<long long>(ag.aborted),
              static_cast<long long>(ag.failed), static_cast<long long>(ag.scenarios));
  std::printf("  pooled alpha p50 %.4f ms, p99 %.4f ms over %lld samples; "
              "%lld critical event(s), ordering %s\n",
              ag.step_p50_s * 1e3, ag.step_p99_s * 1e3,
              static_cast<long long>(ag.samples),
              static_cast<long long>(ag.critical_events),
              ag.monotone_ok ? "monotone" : "VIOLATED");

  if (json_out) {
    const std::string json_path = out.path("BENCH_campaign.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "campaign");
    w.begin_array("overhead");
    w.begin_object()
        .field("steps", oh.steps)
        .field("events", oh.events)
        .field("heartbeat_writes", oh.heartbeat_writes)
        .field("telemetry_s", oh.telemetry_s)
        .field("step_s", oh.step_s)
        .field("overhead_frac", oh.overhead_frac)
        .field("overhead_ok", std::int64_t(oh.overhead_ok ? 1 : 0))
        .end_object();
    w.end_array();
    w.begin_array("aggregate");
    w.begin_object()
        .field("runs", ag.runs)
        .field("valid", ag.valid)
        .field("completed", ag.completed)
        .field("aborted", ag.aborted)
        .field("failed", ag.failed)
        .field("scenarios", ag.scenarios)
        .field("samples", ag.samples)
        .field("step_p50_s", ag.step_p50_s)
        .field("step_p99_s", ag.step_p99_s)
        .field("critical_events", ag.critical_events)
        .field("monotone_ok", std::int64_t(ag.monotone_ok ? 1 : 0))
        .end_object();
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
