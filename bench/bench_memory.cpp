// Memory-footprint accounting (paper Sec. V.B / Fig. 6 affordability): run
// the same thermal plasma under a sweep of grid sizes, species counts and
// MR on/off, with the obs::MemoryLedger published at a sweep of cadences,
// and report the deterministic byte columns (total, high water, fields,
// particles, MR surcharge) plus the conservation verdict
// (total_charged - total_released == total_current, exact) and the probe's
// own cost against the step cost at the default every-step cadence.
//
// The byte columns are deterministic (capacity-exact fab vectors, size-based
// particle accounts) and gated against BENCH_memory.json; the probe/step
// second columns are host timing and are --ignore'd by bench_smoke. The
// overhead_ok verdict (probe <= 1% of step time at interval 1) is gated:
// the probe is a handful of relaxed atomics plus gauge stores, so 1% holds
// with wide margin.
//
// Run: ./bench_memory [--json] [--steps N] [--outdir DIR]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/diag/output_dir.hpp"
#include "src/obs/json.hpp"
#include "src/obs/memory.hpp"

using namespace mrpic;

namespace {

struct CaseRecord {
  std::string name;
  std::int64_t cells = 0;
  int species = 0;
  int mr = 0;
  int interval = 1;
  std::int64_t steps = 0;
  std::int64_t total_bytes = 0;
  std::int64_t high_water_bytes = 0;
  std::int64_t fields_bytes = 0;
  std::int64_t particles_bytes = 0;
  std::int64_t mr_bytes = 0;
  bool conservation_ok = false;
  double probe_s = 0;
  double step_s = 0;
  double overhead_frac = 0;
  bool overhead_ok = false;
};

std::unique_ptr<core::Simulation<2>> make_sim(int n, int nspecies, bool mr) {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(n - 1, n - 1));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(n / 2);
  cfg.shape_order = 2;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim->add_species(particles::Species::electron(), inj);
  if (nspecies > 1) { sim->add_species(particles::Species::proton("ions"), inj); }

  if (mr) {
    mr::MRPatch<2>::Config pcfg;
    pcfg.region = Box2(IntVect2(n / 4, n / 4), IntVect2(n / 2 - 1, n / 2 - 1));
    pcfg.ratio = 2;
    pcfg.transition_cells = 2;
    pcfg.pml.npml = 4;
    sim->enable_mr_patch(pcfg);
  }
  return sim;
}

CaseRecord run_case(const std::string& name, int n, int nspecies, bool mr,
                    int interval, int steps) {
  // Per-case high-water marks: the ledger is process-global, so restart the
  // peak tracking from the (empty) pre-case occupancy.
  obs::memory_ledger().reset_high_water();

  auto sim = make_sim(n, nspecies, mr);
  core::MemoryObsConfig mcfg;
  mcfg.interval = interval;
  sim->enable_memory_obs(mcfg);
  sim->init();
  sim->run(steps);

  CaseRecord r;
  r.name = name;
  r.cells = sim->active_cells();
  r.species = nspecies;
  r.mr = mr ? 1 : 0;
  r.interval = interval;
  r.steps = steps;

  const auto& ledger = obs::memory_ledger();
  r.total_bytes = ledger.total_current();
  r.high_water_bytes = ledger.total_high_water();
  r.fields_bytes = ledger.current_prefix("fields");
  r.particles_bytes = ledger.current_prefix("particles");
  r.mr_bytes = ledger.current_prefix("mr");
  r.conservation_ok =
      ledger.total_charged() - ledger.total_released() == ledger.total_current();

  for (const auto& [rname, stats] : sim->profiler().flat_totals()) {
    if (rname == "memory") { r.probe_s = stats.inclusive_s; }
    if (rname == "step") { r.step_s = stats.inclusive_s; }
  }
  r.overhead_frac = r.step_s > 0 ? r.probe_s / r.step_s : 0;
  r.overhead_ok = r.overhead_frac <= 0.01;
  return r;
}

} // namespace

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  int steps = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    }
  }

  // The sweep: footprint vs grid size, species count and MR on/off (all at
  // the default every-step cadence, where the overhead gate applies), plus
  // one sparse-cadence point to show the accounts stay fresh at interval 5.
  struct Point {
    const char* name;
    int n, species, interval;
    bool mr;
  };
  const std::vector<Point> sweep = {
      {"16_1sp", 16, 1, 1, false},      {"32_1sp", 32, 1, 1, false},
      {"32_2sp", 32, 2, 1, false},      {"32_1sp_mr", 32, 1, 1, true},
      {"32_2sp_mr", 32, 2, 1, true},    {"32_2sp_mr_i5", 32, 2, 5, true},
  };

  std::printf("memory footprint vs grid/species/MR (%d steps, thermal plasma)\n\n",
              steps);
  std::printf("  %-14s %7s %3s %3s %12s %12s %12s %5s %9s %5s\n", "case", "cells",
              "sp", "mr", "total", "fields", "particles", "cons", "overhead", "ok");
  std::vector<CaseRecord> records;
  for (const auto& p : sweep) {
    auto r = run_case(p.name, p.n, p.species, p.mr, p.interval, steps);
    std::printf("  %-14s %7lld %3d %3d %12lld %12lld %12lld %5s %8.3f%% %5s\n",
                r.name.c_str(), static_cast<long long>(r.cells), r.species, r.mr,
                static_cast<long long>(r.total_bytes),
                static_cast<long long>(r.fields_bytes),
                static_cast<long long>(r.particles_bytes),
                r.conservation_ok ? "ok" : "FAIL", 100 * r.overhead_frac,
                r.overhead_ok ? "ok" : "FAIL");
    records.push_back(r);
  }

  if (json_out) {
    const std::string json_path = out.path("BENCH_memory.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "memory");
    w.begin_array("cases");
    for (const auto& r : records) {
      w.begin_object()
          .field("case", r.name)
          .field("cells", r.cells)
          .field("species", std::int64_t(r.species))
          .field("mr", std::int64_t(r.mr))
          .field("interval", std::int64_t(r.interval))
          .field("steps", r.steps)
          .field("total_bytes", r.total_bytes)
          .field("high_water_bytes", r.high_water_bytes)
          .field("fields_bytes", r.fields_bytes)
          .field("particles_bytes", r.particles_bytes)
          .field("mr_bytes", r.mr_bytes)
          .field("conservation_ok", std::int64_t(r.conservation_ok ? 1 : 0))
          .field("probe_s", r.probe_s)
          .field("step_s", r.step_s)
          .field("overhead_frac", r.overhead_frac)
          .field("overhead_ok", std::int64_t(r.overhead_ok ? 1 : 0))
          .end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
