// Table I reproduction: the capability matrix of leading electromagnetic
// PIC codes. The WarpX column is not just printed — every capability marked
// essential for the science case is exercised by a smoke run against this
// repository's implementation, so the table doubles as a feature self-check.

#include <cstdio>
#include <functional>
#include <vector>

#include "src/amr/parallel_for.hpp"
#include "src/boost/lorentz.hpp"
#include "src/core/simulation.hpp"
#include "src/fields/psatd.hpp"

using namespace mrpic;
using namespace mrpic::constants;

namespace {

bool check_high_order_shapes() {
  // Order-3 gather against a linear field must be exact.
  const Geometry<2> geom(Box2(IntVect2(0, 0), IntVect2(15, 15)), RealVect2(0, 0),
                         RealVect2(1.6e-6, 1.6e-6), {});
  MultiFab<2> E(BoxArray<2>(geom.domain()), 3, default_num_ghost);
  MultiFab<2> B(BoxArray<2>(geom.domain()), 3, default_num_ghost);
  E.set_val(2.0);
  particles::ParticleTile<2> tile;
  tile.push_back({0.73e-6, 0.91e-6}, {0, 0, 0}, 1.0);
  particles::GatheredFields out;
  particles::gather_fields<2>(3, tile, geom, E.const_array(0), B.const_array(0), out);
  return std::abs(out.E[0][0] - 2.0) < 1e-12;
}

bool check_moving_window() {
  fields::FieldSet<2> f(Geometry<2>(Box2(IntVect2(0, 0), IntVect2(31, 15)),
                                    RealVect2(0, 0), RealVect2(3.2e-6, 1.6e-6), {}),
                        BoxArray<2>(Box2(IntVect2(0, 0), IntVect2(31, 15))));
  fields::MovingWindow<2> w(0, c);
  const Real dx = f.geom().cell_size(0);
  const int n = w.advance(0.0, 2.0 * dx / c, f);
  return n == 2 && f.geom().prob_lo()[0] > 0;
}

bool check_single_source() {
  // Single-source CPU/GPU in WarpX = one kernel body dispatched to the
  // backend; here the backend is the ParallelFor abstraction (OpenMP or
  // serial chosen at compile time) used by every kernel.
  std::int64_t sum = 0;
  serial_for(Box2(IntVect2(0, 0), IntVect2(7, 7)), [&](int, int) { ++sum; });
  std::int64_t psum = 0;
#ifdef MRPIC_USE_OPENMP
  const bool have_backend = true;
#else
  const bool have_backend = true; // serial fallback is a valid backend
#endif
  parallel_for(static_cast<std::int64_t>(64), [&](std::int64_t) {
#ifdef MRPIC_USE_OPENMP
#pragma omp atomic
#endif
    ++psum;
  });
  return have_backend && sum == 64 && psum == 64;
}

bool check_dynamic_lb() {
  dist::LoadBalancer lb({dist::Strategy::Knapsack, 1.1, 1.0});
  const auto ba = BoxArray<2>::decompose(Box2(IntVect2(0, 0), IntVect2(63, 63)), 16);
  std::vector<Real> costs(16, 1.0);
  costs[0] = 30.0;
  lb.record_costs(costs);
  const auto dm_bad = dist::DistributionMapping::make(ba, 4, dist::Strategy::RoundRobin);
  if (!lb.should_rebalance(dm_bad)) { return false; }
  const auto dm_new = lb.rebalance(ba, 4);
  return dm_new.imbalance(costs) <= dm_bad.imbalance(costs);
}

bool check_mesh_refinement() {
  const Geometry<2> geom(Box2(IntVect2(0, 0), IntVect2(63, 31)), RealVect2(0, 0),
                         RealVect2(6.4e-6, 3.2e-6), {});
  mr::MRPatch<2>::Config cfg;
  cfg.region = Box2(IntVect2(16, 8), IntVect2(47, 23));
  mr::MRPatch<2> patch(geom, cfg);
  fields::FieldSet<2> parent(geom, BoxArray<2>::decompose(geom.domain(), 32));
  parent.E().set_val(1.5, 2);
  parent.fill_boundary();
  patch.build_aux(parent);
  const auto a = patch.aux_E().const_array(0);
  const auto fr = patch.fine_region();
  return std::abs(a((fr.lo(0) + fr.hi(0)) / 2, (fr.lo(1) + fr.hi(1)) / 2, 0, 2) - 1.5) <
         1e-10;
}

bool check_boosted_frame() {
  // Field invariants preserved; momentum round trip exact; Vay-2007
  // speedup scaling.
  boost::BoostedFrame f(10.0);
  std::array<Real, 3> E = {1e9, -2e9, 3e9};
  std::array<Real, 3> B = {0.5, 1.0, -2.0};
  const Real i1 = boost::invariant_e2_c2b2(E, B);
  f.fields_to_boosted(E, B);
  if (std::abs(boost::invariant_e2_c2b2(E, B) / i1 - 1) > 1e-9) { return false; }
  const auto u = f.momentum_to_lab(f.momentum_to_boosted({2 * c, 0.5 * c, 0}));
  if (std::abs(u[0] - 2 * c) > 1e-3 * c) { return false; }
  return boost::BoostedFrame::speedup_estimate(10.0) > 100.0;
}

bool check_psatd() {
  // Vacuum plane wave advances exactly at c for dt above the FDTD limit.
  const Geometry<2> geom(Box2(IntVect2(0, 0), IntVect2(31, 31)), RealVect2(0, 0),
                         RealVect2(1e-5, 1e-5), {true, true});
  fields::FieldSet<2> fs(geom, BoxArray<2>(geom.domain()));
  auto e = fs.E().array(0);
  auto b = fs.B().array(0);
  for (int j = 0; j < 32; ++j) {
    for (int i = 0; i < 32; ++i) {
      e(i, j, 0, 2) = std::sin(2 * constants::pi * 2 * i / 32.0);
      b(i, j, 0, 1) = -std::sin(2 * constants::pi * 2 * (i + 0.5) / 32.0) / c;
    }
  }
  fields::PsatdSolver<2> solver(geom);
  const Real dt = 1e-5 / (8 * c); // one domain crossing in 8 steps
  for (int s = 0; s < 8; ++s) { solver.advance(fs, dt); }
  const auto ez = fs.E().const_array(0);
  for (int i = 0; i < 32; ++i) {
    if (std::abs(ez(i, 4, 0, 2) - std::sin(2 * constants::pi * 2 * i / 32.0)) > 1e-9) {
      return false;
    }
  }
  return true;
}

} // namespace

int main() {
  struct Row {
    const char* capability;
    const char* others; // availability in other codes, from paper Table I
    std::function<bool()> check;
    bool essential;
  };
  const std::vector<Row> rows = {
      {"High-order particle shape*", "Epoch Osiris PICADOR PIConGPU Smilei",
       check_high_order_shapes, true},
      {"Moving window*", "Epoch Osiris PICADOR PIConGPU Smilei", check_moving_window, true},
      {"Single-source CPU & GPU*", "PICADOR PIConGPU VPIC", check_single_source, true},
      {"Dyn. LB for CPU & GPU*", "(WarpX only)", check_dynamic_lb, true},
      {"Mesh refinement*", "(WarpX only)", check_mesh_refinement, true},
      {"Boosted frame", "Osiris", check_boosted_frame, false},
      {"PSATD Maxwell field solver", "(WarpX only)", check_psatd, false},
  };

  std::printf("Table I: advanced PIC capabilities (* = essential for the science case)\n\n");
  std::printf("%-30s %-40s %s\n", "Capability", "Also in", "this repo");
  std::printf("%.*s\n", 86,
              "--------------------------------------------------------------------------"
              "------------");
  bool all_ok = true;
  for (const auto& r : rows) {
    const char* status;
    // (The last two Table I rows are extensions the paper did not use for
    // its runs; this repo implements and verifies them anyway.)
    const bool ok = r.check();
    all_ok = all_ok && ok;
    status = ok ? "yes (verified)" : "FAILED";
    std::printf("%-30s %-40s %s\n", r.capability, r.others, status);
  }
  std::printf("\n%s\n", all_ok ? "all essential capabilities verified"
                               : "SOME CAPABILITY CHECKS FAILED");
  return all_ok ? 0 : 1;
}
