// Fig. 5 (right) reproduction: strong scaling from a maximally-filled
// multi-node base over the paper's measured ranges — Frontier 512-8192,
// Fugaku 6144-152064, Summit 512-4096, Perlmutter 15-480 nodes — down to
// the AMReX granularity limit of one block per device (blocks: Frontier
// 256^3, Fugaku 64-96^3, Summit/Perlmutter 128^3). The paper's headline:
// ~30% efficiency loss per order of magnitude of node count.

// With --json, additionally writes BENCH_strong_scaling.json: model
// speedup/efficiency rows per machine, plus per-rank-count simulated
// cluster records (compute_s, comm_s, total_s, bytes, messages).
//
// With --attribution, runs obs::analysis over the recorded sweep and writes
// BENCH_attribution_strong.json + attribution_report_strong.md (per-point
// loss decomposition against the ideal t1/N, plus critical paths).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "src/cluster/sim_cluster.hpp"
#include "src/diag/output_dir.hpp"
#include "src/obs/json.hpp"
#include "src/obs/perf_report.hpp"
#include "src/obs/rank_recorder.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/scaling_model.hpp"

using namespace mrpic;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  bool attribution = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--attribution") == 0) { attribution = true; }
  }
  struct Range {
    const char* machine;
    double n0, n1;
  };
  const Range ranges[] = {
      {"Frontier", 512, 8192},
      {"Fugaku", 6144, 152064},
      {"Summit", 512, 4096},
      {"Perlmutter", 15, 480},
  };

  std::printf("Fig. 5 (right): strong scaling, speedup & parallel efficiency\n");
  std::printf("(model: efficiency = 1/(1 + (3/7) log10(N/N0)) -> 70%% per decade)\n\n");
  perf::StrongScalingModel model;

  for (const auto& r : ranges) {
    const auto& m = perf::machine_by_name(r.machine);
    // Base problem: memory-filled at N0 nodes with the machine's block size.
    const double cells = std::pow(static_cast<double>(m.strong_block), 3) *
                         m.devices_per_node * 4.0 * r.n0; // 4 blocks/device at base
    const double nmax_granularity = perf::StrongScalingModel::max_nodes(m, cells);
    std::printf("%s (blocks %d^3, base %0.f nodes, granularity limit %.0f nodes):\n",
                r.machine, m.strong_block, r.n0, nmax_granularity);
    std::printf("  %10s %10s %12s %12s\n", "nodes", "speedup", "efficiency", "ideal");
    for (double n = r.n0; n <= r.n1 * 1.0001; n *= 2) {
      if (n > nmax_granularity) {
        std::printf("  %10.0f  -- beyond one-block-per-device granularity --\n", n);
        break;
      }
      std::printf("  %10.0f %10.2f %11.1f%% %12.1f\n", n, model.speedup(n, r.n0),
                  100 * model.efficiency(n, r.n0), n / r.n0);
    }
    const double decade_eff = model.efficiency(10 * r.n0, r.n0);
    std::printf("  -> efficiency after one decade: %.0f%% (paper: ~70%%)\n\n",
                100 * decade_eff);
  }

  // Mechanistic demonstration with the simulated cluster: fixed global
  // problem spread over more ranks; per-rank compute shrinks while halo
  // surface-to-volume grows.
  std::printf("simulated cluster (fixed 128^3 domain, 32^3 blocks, Summit network):\n");
  const auto& summit = perf::machine_by_name("Summit");
  cluster::CommModel cm;
  cm.latency_s = summit.net_latency_s;
  cm.bandwidth_Bps = summit.net_bandwidth_Bps;
  const Box3 domain(IntVect3(0, 0, 0), IntVect3(127, 127, 127));
  const auto ba = BoxArray<3>::decompose(domain, 32); // 64 blocks
  perf::StepTimeModel st;
  const double box_comp =
      st.node_seconds(summit, 32.0 * 32 * 32, 32.0 * 32 * 32) * summit.devices_per_node;
  double t1 = 0;
  struct ClusterRecord {
    int nranks;
    cluster::StepCost cost;
    double speedup, efficiency;
  };
  std::vector<ClusterRecord> cluster_records;
  // Per-rank breakdown of each sweep point ("step" = sweep index).
  obs::RankRecorder recorder(64);
  int sweep_point = 0;
  for (int nranks : {1, 2, 4, 8, 16, 32, 64}) {
    const auto dm =
        dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
    cluster::SimCluster cl(nranks, cm);
    recorder.set_step(sweep_point++);
    const auto cost =
        cl.step_cost(ba, dm, std::vector<Real>(ba.size(), box_comp), 9, 4, 8, &recorder);
    if (nranks == 1) { t1 = cost.total_s; }
    cluster_records.push_back(
        {nranks, cost, t1 / cost.total_s, t1 / cost.total_s / nranks});
    std::printf("  %4d ranks: %.5f s/step  speedup %5.2f  efficiency %5.1f%%\n", nranks,
                cost.total_s, t1 / cost.total_s, 100 * t1 / cost.total_s / nranks);
  }

  if (json_out) {
    const std::string json_path = out.path("BENCH_strong_scaling.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "strong_scaling");
    w.begin_array("model");
    for (const auto& r : ranges) {
      const auto& m = perf::machine_by_name(r.machine);
      const double cells = std::pow(static_cast<double>(m.strong_block), 3) *
                           m.devices_per_node * 4.0 * r.n0;
      const double nmax = perf::StrongScalingModel::max_nodes(m, cells);
      for (double n = r.n0; n <= r.n1 * 1.0001 && n <= nmax; n *= 2) {
        w.begin_object()
            .field("machine", r.machine)
            .field("nodes", n)
            .field("base_nodes", r.n0)
            .field("speedup", model.speedup(n, r.n0))
            .field("efficiency", model.efficiency(n, r.n0))
            .end_object();
      }
    }
    w.end_array();
    w.begin_array("simulated_cluster");
    for (const auto& r : cluster_records) {
      w.begin_object()
          .field("nodes", std::int64_t(r.nranks))
          .field("compute_s", r.cost.compute_s)
          .field("comm_s", r.cost.comm_s)
          .field("total_s", r.cost.total_s)
          .field("imbalance", r.cost.imbalance)
          .field("bytes", r.cost.total_bytes)
          .field("messages", r.cost.num_messages)
          .field("speedup", r.speedup)
          .field("efficiency", r.efficiency)
          .end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    const std::string heatmap_path = out.path("strong_scaling_rank_heatmap.csv");
    recorder.write_rank_heatmap_csv(heatmap_path);
    std::printf("\nwrote %s and %s\n", json_path.c_str(), heatmap_path.c_str());
  }

  if (attribution) {
    obs::PerfReportOptions opt;
    opt.title = "strong-scaling attribution (fixed 128^3 domain, Summit network)";
    opt.latency_s = cm.latency_s;
    auto report = obs::build_perf_report(recorder, opt);
    // Strong scaling: perfectly-scaled time at N ranks is t1/N.
    const auto& steps = recorder.steps();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const double n = static_cast<double>(cluster_records[i].nranks);
      report.scaling_losses.push_back(
          obs::analysis::decompose_loss(steps[i], cm.latency_s, t1 / n));
    }
    const std::string json_path = out.path("BENCH_attribution_strong.json");
    const std::string md_path = out.path("attribution_report_strong.md");
    obs::write_json(report, json_path);
    obs::write_markdown(report, md_path);
    std::printf("\nattribution: loss terms per rank count (sum == loss exactly)\n");
    for (const auto& t : report.scaling_losses) {
      std::printf("  %4.0f ranks: eff %5.1f %%  imbalance %5.2f %%  comm %5.2f %%  "
                  "latency %5.2f %%  resil %5.2f %%  gap %.1e\n",
                  t.nodes, 100 * t.efficiency, 100 * t.imbalance, 100 * t.comm,
                  100 * t.latency, 100 * t.resil, t.invariant_gap());
    }
    std::printf("wrote %s and %s\n", json_path.c_str(), md_path.c_str());
  }
  return 0;
}
