#!/bin/sh
# bench_smoke — ctest gate over the benchmark JSON pipeline.
#
#   bench_smoke.sh BENCH_BIN_DIR BASELINE_DIR
#
# Runs each scaling bench tiny with --json into a scratch dir, validates
# every produced BENCH_*.json against its schema, then runs bench_compare:
# the deterministic weak/strong-scaling outputs against the committed
# baselines (loose tolerance: the records are pure model arithmetic, but
# keep headroom for FP reassociation across compilers), plus two
# self-checks of the gate itself (identical inputs pass; a perturbed metric
# beyond tolerance fails).
set -eu

bindir=$1
basedir=$2
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== run benches (--json) into $tmp"
"$bindir/bench_weak_scaling" --json --attribution --outdir "$tmp" > /dev/null
"$bindir/bench_strong_scaling" --json --attribution --outdir "$tmp" > /dev/null
"$bindir/bench_resilience" --json --outdir "$tmp" > /dev/null
"$bindir/bench_health" --json --outdir "$tmp" > /dev/null
"$bindir/bench_insitu" --json --outdir "$tmp" > /dev/null
"$bindir/bench_memory" --json --outdir "$tmp" > /dev/null
"$bindir/bench_kernel_grain" --json --outdir "$tmp" > /dev/null
"$bindir/bench_campaign" --json --outdir "$tmp" > /dev/null
"$bindir/bench_mr_savings" --json --quick --outdir "$tmp" > /dev/null
"$bindir/bench_kernels" --json --quick --outdir "$tmp" > /dev/null

for f in "$tmp"/BENCH_*.json; do
  [ -s "$f" ] || { echo "FAIL: $f missing or empty"; exit 1; }
done

echo "== schema validation"
"$bindir/bench_compare" --schema "$tmp"/BENCH_*.json

echo "== compare deterministic benches against baselines"
# bench_kernels is host-timing noise, schema-checked only above.
"$bindir/bench_compare" --rel-tol 0.02 \
    "$basedir/BENCH_weak_scaling.json" "$tmp/BENCH_weak_scaling.json"
"$bindir/bench_compare" --rel-tol 0.02 \
    "$basedir/BENCH_strong_scaling.json" "$tmp/BENCH_strong_scaling.json"
"$bindir/bench_compare" --rel-tol 0.02 \
    "$basedir/BENCH_resilience.json" "$tmp/BENCH_resilience.json"
# bench_health: probe/alert counts and the invariant verdicts are
# deterministic and gated; probe/step seconds and their ratio are host
# timing noise, so only those columns are ignored.
"$bindir/bench_compare" --rel-tol 0.02 \
    --ignore probe_s --ignore step_s --ignore overhead_frac \
    "$basedir/BENCH_health.json" "$tmp/BENCH_health.json"
# bench_insitu: record/frame/byte counts and the series/beam verdicts are
# deterministic and gated; insitu/step seconds and their ratio are host
# timing noise, so only those columns are ignored.
"$bindir/bench_compare" --rel-tol 0.02 \
    --ignore insitu_s --ignore step_s --ignore overhead_frac \
    "$basedir/BENCH_insitu.json" "$tmp/BENCH_insitu.json"
# bench_memory: the byte columns are deterministic (capacity-exact fabs,
# size-based particle accounts) and gated, as are the conservation and
# <=1%-overhead verdicts; only the raw probe/step seconds and their ratio
# are host timing noise.
"$bindir/bench_compare" --rel-tol 0.02 \
    --ignore probe_s --ignore step_s --ignore overhead_frac \
    "$basedir/BENCH_memory.json" "$tmp/BENCH_memory.json"
# bench_kernel_grain: invocation/particle counts, the analytic
# flops/bytes/intensity columns, the locality model and the halo phase
# timeline are deterministic and gated, as are the split_ok and
# <=1%-overhead verdicts; kernel wall times, achieved bandwidth and the raw
# probe/step seconds are host timing noise. The substring "overhead_frac"
# does not match "overhead_ok", so the verdict stays gated.
"$bindir/bench_compare" --rel-tol 0.02 \
    --ignore time_s --ignore gbyte_s \
    --ignore probe_s --ignore step_s --ignore overhead_frac \
    "$basedir/BENCH_kernel_grain.json" "$tmp/BENCH_kernel_grain.json"
# bench_campaign: the synthetic-campaign aggregate (run/scenario/event
# counts, pooled percentiles over fixed samples) is deterministic and gated,
# as are the event-ordering and <=1%-overhead verdicts; only the raw
# telemetry/step seconds and their ratio are host timing noise. The
# substring "overhead_frac" does not match "overhead_ok" or "monotone_ok",
# so both verdicts stay gated.
"$bindir/bench_compare" --rel-tol 0.02 \
    --ignore telemetry_s --ignore step_s --ignore overhead_frac \
    "$basedir/BENCH_campaign.json" "$tmp/BENCH_campaign.json"
# bench_mr_savings --json: pure arithmetic of the analytic memory model.
"$bindir/bench_compare" --rel-tol 1e-6 \
    "$basedir/BENCH_mr_savings.json" "$tmp/BENCH_mr_savings.json"
# The attribution output is pure arithmetic over the same recorder sweep, so
# it is held to a much tighter tolerance; the invariant-gap metrics sit at
# FP-epsilon scale and are gated by the test suite instead.
"$bindir/bench_compare" --rel-tol 1e-6 --ignore invariant_gap \
    "$basedir/BENCH_attribution.json" "$tmp/BENCH_attribution.json"

echo "== append run to the bench-history ledger"
# Cross-run perf trajectory (obs::bench_history): one schema-tagged JSONL
# record per BENCH_*.json of this run, then the trend over recent entries.
# This runs before the self-checks below so their perturbed scratch file
# never reaches the ledger.
ledger_dir="$basedir/../history"
mkdir -p "$ledger_dir"
"$bindir/bench_trend" --append "$ledger_dir/BENCH_history.jsonl" "$tmp"/BENCH_*.json
"$bindir/bench_trend" "$ledger_dir/BENCH_history.jsonl" --last 5
# --csv self-check: same window as flat CSV; the header plus at least one
# data row must come out, and every row must have the 5 columns.
csv_rows=$("$bindir/bench_trend" "$ledger_dir/BENCH_history.jsonl" --last 5 --csv \
    | awk -F, 'NF != 5 { exit 1 } END { print NR }') \
    || { echo "FAIL: bench_trend --csv produced a malformed row"; exit 1; }
[ "$csv_rows" -ge 2 ] || { echo "FAIL: bench_trend --csv produced no data rows"; exit 1; }

echo "== gate self-checks"
"$bindir/bench_compare" "$tmp/BENCH_weak_scaling.json" "$tmp/BENCH_weak_scaling.json" \
    > /dev/null || { echo "FAIL: identical inputs must pass"; exit 1; }
# Perturb one numeric metric by 10x; the gate must now fail.
sed 's/"efficiency": *\([0-9]\)/"efficiency": 9\1/' \
    "$tmp/BENCH_weak_scaling.json" > "$tmp/BENCH_perturbed.json"
if "$bindir/bench_compare" "$tmp/BENCH_weak_scaling.json" "$tmp/BENCH_perturbed.json" \
    > /dev/null 2>&1; then
  echo "FAIL: perturbed input must trip the gate"
  exit 1
fi

echo "bench_smoke: OK"
