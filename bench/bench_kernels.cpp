// Sec. V.A.1 reproduction: the single-node kernel-optimization experiment.
// The paper reports, on one A64FX node (order-3 shapes, single precision):
//
//     Routine      Reference (s)   Optimized (s)   Speed up
//     Gather           270.6          102.7          2.63x
//     Deposition       246.2           53.51         4.60x
//
// Here the same two kernel structures are timed on the host CPU: the
// baseline processes particles one at a time in arrival order, recomputing
// shape weights per component; the optimized kernels require cell-sorted
// particles and process runs with transposed per-run weight arrays,
// vectorizing over particles with ijk fixed and touching each stencil value
// once per run. The *shape* of the result (optimized wins; deposition gains
// more than gather because its per-particle scatters collapse into one
// store per tap per run) carries over to this host; the paper's 2.63x/4.60x
// magnitudes are A64FX-specific — there the Fujitsu compiler leaves the
// baseline nearly scalar (SIMD rate 2.3%, Sec. VI.B) while x86 GCC already
// auto-vectorizes it, so the gap here is smaller and dominated by the
// memory-locality part of the optimization.
//
// Also runs the N_grp group-size ablation (paper: powers of two, 32-128)
// and the SP vs DP comparison behind Table III's MP mode, as
// google-benchmark timings, followed by the summary table.

// With --json (positioned anywhere in argv), the google-benchmark sweep is
// skipped and the single-pass summary timings are written to
// BENCH_kernels.json (in --outdir, default out/) for machine consumption.
// --quick shrinks the problem to 16^3 x 2 ppc for smoke-test runs
// (bench/bench_smoke.sh) where only the JSON schema matters, not the
// timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/diag/output_dir.hpp"
#include "src/diag/stopwatch.hpp"
#include "src/kernels/optimized_kernels.hpp"
#include "src/kernels/reference_kernels.hpp"
#include "src/obs/json.hpp"

using namespace mrpic::kernels;

namespace {

int grid_n = 64;
int ppc = 12;

template <typename T>
struct Setup {
  KernelFields<T> fields;
  KernelParticles<T> particles;
  explicit Setup(bool sorted = true) {
    fields.resize(grid_n, 4);
    fields.randomize_eb(1234, T(1e9));
    particles.init_uniform(grid_n, ppc, 999, static_cast<T>(1e7));
    if (!sorted) { particles.shuffle(77); }
  }
};

template <typename T>
void BM_GatherReference(benchmark::State& state) {
  Setup<T> s(/*sorted=*/state.range(0) != 0);
  for (auto _ : state) {
    gather_reference(s.particles, s.fields);
    benchmark::DoNotOptimize(s.particles.exp_.data());
  }
  state.SetItemsProcessed(state.iterations() * s.particles.size());
}

template <typename T>
void BM_GatherOptimized(benchmark::State& state) {
  Setup<T> s;
  const int ngrp = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gather_optimized(s.particles, s.fields, ngrp);
    benchmark::DoNotOptimize(s.particles.exp_.data());
  }
  state.SetItemsProcessed(state.iterations() * s.particles.size());
}

template <typename T>
void BM_DepositReference(benchmark::State& state) {
  Setup<T> s(/*sorted=*/state.range(0) != 0);
  for (auto _ : state) {
    s.fields.zero_j();
    deposit_reference(s.particles, s.fields, T(1e-19));
    benchmark::DoNotOptimize(s.fields.jx.ptr());
  }
  state.SetItemsProcessed(state.iterations() * s.particles.size());
}

template <typename T>
void BM_DepositOptimized(benchmark::State& state) {
  Setup<T> s;
  const int ngrp = static_cast<int>(state.range(0));
  for (auto _ : state) {
    s.fields.zero_j();
    deposit_optimized(s.particles, s.fields, T(1e-19), ngrp);
    benchmark::DoNotOptimize(s.fields.jx.ptr());
  }
  state.SetItemsProcessed(state.iterations() * s.particles.size());
}

// Arg on the reference kernels: 0 = unsorted (arrival order), 1 = sorted.
BENCHMARK(BM_GatherReference<float>)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GatherOptimized<float>)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DepositReference<float>)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DepositOptimized<float>)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GatherReference<double>)->Arg(0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GatherOptimized<double>)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DepositReference<double>)->Arg(0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DepositOptimized<double>)->Arg(64)->Unit(benchmark::kMillisecond);

// Summary timings in the paper's format (single timing pass, SP). The
// reference runs on arrival-order (unsorted) particles; the optimized path
// on sorted ones, as in the paper's locality strategy.
struct SummaryTimings {
  double gather_ref_s, gather_opt_s, deposit_ref_s, deposit_opt_s;
};

SummaryTimings run_summary() {
  Setup<float> su(/*sorted=*/false);
  Setup<float> ss(/*sorted=*/true);
  const int reps = 6;
  SummaryTimings t{};
  mrpic::diag::Stopwatch sw;
  for (int r = 0; r < reps; ++r) { gather_reference(su.particles, su.fields); }
  t.gather_ref_s = sw.seconds();
  sw.restart();
  for (int r = 0; r < reps; ++r) { gather_optimized(ss.particles, ss.fields); }
  t.gather_opt_s = sw.seconds();
  sw.restart();
  for (int r = 0; r < reps; ++r) {
    su.fields.zero_j();
    deposit_reference(su.particles, su.fields, 1e-19f);
  }
  t.deposit_ref_s = sw.seconds();
  sw.restart();
  for (int r = 0; r < reps; ++r) {
    ss.fields.zero_j();
    deposit_optimized(ss.particles, ss.fields, 1e-19f);
  }
  t.deposit_opt_s = sw.seconds();
  return t;
}

void print_summary_table(const SummaryTimings& t) {
  const double t_gather_ref = t.gather_ref_s, t_gather_opt = t.gather_opt_s;
  const double t_dep_ref = t.deposit_ref_s, t_dep_opt = t.deposit_opt_s;
  std::printf("\nSec. V.A.1 summary (this host, SP, order 3, %d^3 cells x %d ppc;\n",
              grid_n, ppc);
  std::printf("reference = per-particle on unsorted particles, optimized = grouped on\n");
  std::printf("sorted particles):\n");
  std::printf("  %-11s %14s %14s %9s %17s\n", "Routine", "Reference (s)", "Optimized (s)",
              "Speed up", "paper (A64FX)");
  std::printf("  %-11s %14.4f %14.4f %8.2fx %17s\n", "Gather", t_gather_ref, t_gather_opt,
              t_gather_ref / t_gather_opt, "2.63x");
  std::printf("  %-11s %14.4f %14.4f %8.2fx %17s\n", "Deposition", t_dep_ref, t_dep_opt,
              t_dep_ref / t_dep_opt, "4.60x");
  std::printf("(x86 note: GCC auto-vectorizes the baseline, unlike the A64FX Fujitsu\n");
  std::printf("compiler baseline with 2.3%% SIMD rate, so the host gap is smaller)\n");
}

void write_json(const SummaryTimings& t, const std::string& path) {
  std::ofstream os(path);
  mrpic::obs::json::Writer w(os);
  w.begin_object();
  w.field("bench", "kernels");
  w.field("grid_n", grid_n);
  w.field("ppc", ppc);
  w.field("precision", "sp");
  w.field("shape_order", 3);
  w.begin_array("routines");
  w.begin_object()
      .field("routine", "gather")
      .field("reference_s", t.gather_ref_s)
      .field("optimized_s", t.gather_opt_s)
      .field("speedup", t.gather_ref_s / t.gather_opt_s)
      .field("paper_a64fx_speedup", 2.63)
      .end_object();
  w.begin_object()
      .field("routine", "deposition")
      .field("reference_s", t.deposit_ref_s)
      .field("optimized_s", t.deposit_opt_s)
      .field("speedup", t.deposit_ref_s / t.deposit_opt_s)
      .field("paper_a64fx_speedup", 4.60)
      .end_object();
  w.end_array();
  w.end_object();
  os << '\n';
  std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int main(int argc, char** argv) {
  const auto outdir = mrpic::diag::OutputDir::from_args(argc, argv);
  // Strip our --json/--quick flags before google-benchmark sees (and
  // rejects) them.
  bool json_out = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_out = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      grid_n = 16;
      ppc = 2;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!json_out) {
    // The statistical sweep is for humans at a terminal; --json runs only
    // the single-pass summary below.
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const SummaryTimings t = run_summary();
  print_summary_table(t);
  if (json_out) { write_json(t, outdir.path("BENCH_kernels.json")); }
  return 0;
}
