// Fig. 6 reproduction — the paper's key mesh-refinement experiment.
//
// Three runs of the same physical scenario (a reduced 2D hybrid-target
// case: laser onto a solid foil with gas, high resolution needed only
// around the foil, for a limited time, moving window on):
//
//   a) "with MR":            coarse grid + 2x refinement patch over the
//                            target; the patch follows the moving window
//                            and is removed once the target leaves it;
//   b) "no MR, 2x res, ppc/4": the whole domain at twice the resolution,
//                            particles-per-cell divided by 4 so the total
//                            macroparticle count matches case (a);
//   c) "no MR, 2x res":      same, with the same ppc as (a) (4x particles).
//
// All three use the same (fine-CFL) time step. The harness records the
// cumulative wall-clock time against physical time — the paper's Fig. 6
// curves — marks the patch-removal point (the star) and the moving-window
// start (the dashed line), and reports the per-step cost ratios after
// removal, where the paper finds MR between 1.5x and 4x faster.
//
// Output (in --outdir, default out/): mr_savings_<case>.csv
// (t_fs, cumulative_s, step_ms, cells, parts)
//
// --json additionally writes BENCH_mr_savings.json: the *memory*-savings
// side of the same affordability argument, a deterministic sweep of the
// analytic model in obs::analytic_mr_savings over (dim, ratio,
// patch-fraction) — the uniform-fine-equivalent bytes over the MR-run bytes.
// This is pure arithmetic (no timing) and is baseline-gated by bench_smoke;
// --quick skips the wall-clock cases and emits only the JSON.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/stopwatch.hpp"
#include "src/obs/json.hpp"
#include "src/obs/memory.hpp"

using namespace mrpic;
using namespace mrpic::constants;

namespace {

diag::OutputDir g_out; // set in main from --outdir

struct CaseResult {
  std::string name;
  double total_s = 0;
  double post_removal_step_ms = 0; // mean step cost after the removal time
  std::int64_t particles = 0;
  Real removal_time = 0;
};

constexpr Real t_end = 120e-15;
constexpr Real window_start = 55e-15;
// The window passes the foil (at 4 um) at window_start + 4um/c ~ 68 fs.
constexpr Real remove_x = 4.2e-6;

std::unique_ptr<core::Simulation<2>> make_sim(bool mr, int res_factor, int ppc_div) {
  core::SimulationConfig<2> cfg;
  const int nx = 200 * res_factor, ny = 20 * res_factor;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(nx - 1, ny - 1));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(20e-6, 8e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 8;
  cfg.max_grid_size = IntVect2(nx / 2, ny);
  cfg.shape_order = 3;
  cfg.mr_remove_when_lo_above = remove_x;
  // Same dt in all cases: the fine-grid CFL of the 2x-resolved mesh.
  const Geometry<2> fine_geom(Box2(IntVect2(0, 0), IntVect2(399, 39)), cfg.prob_lo,
                              cfg.prob_hi, cfg.periodic);
  cfg.forced_dt = fields::cfl_dt(fine_geom, cfg.cfl);

  auto sim = std::make_unique<core::Simulation<2>>(cfg);
  const Real nc = plasma::critical_density(0.8e-6);

  plasma::InjectorConfig<2> gas;
  gas.density = plasma::gas_jet<2>(0.02 * nc, 5e-6, 600e-6, 2e-6);
  gas.ppc = ppc_div == 4 ? IntVect2(1, 1) : IntVect2(2, 2);
  sim->add_species(particles::Species::electron("gas_e"), gas);

  plasma::InjectorConfig<2> solid;
  solid.density = plasma::slab<2>(12 * nc, 2.5e-6, 4e-6);
  solid.ppc = ppc_div == 4 ? IntVect2(2, 1) : IntVect2(4, 2);
  sim->add_species(particles::Species::electron("solid_e"), solid);
  sim->add_species(particles::Species::proton("solid_i"), solid);

  laser::LaserConfig lc;
  lc.a0 = 5.0;
  lc.wavelength = 0.8e-6;
  lc.waist = 2.5e-6;
  lc.duration = 8e-15;
  lc.t_peak = 14e-15;
  lc.x_antenna = 14e-6; // emits toward the foil; reflected pulse goes +x
  lc.center = {4e-6, 0};
  lc.polarization = 1;
  sim->add_laser(lc);

  if (mr) {
    mr::MRPatch<2>::Config pcfg;
    pcfg.region = Box2(IntVect2(15, 2), IntVect2(64, 17)); // 1.5..6.5 um
    pcfg.ratio = 2;
    pcfg.transition_cells = 2;
    pcfg.pml.npml = 8;
    sim->enable_mr_patch(pcfg);
  }
  sim->set_moving_window(0, c, window_start);
  sim->init();
  return sim;
}

CaseResult run_case(const std::string& name, const std::string& label, bool mr,
                    int res_factor, int ppc_div) {
  auto sim = make_sim(mr, res_factor, ppc_div);
  CaseResult res;
  res.name = label;
  res.particles = sim->total_particles();
  std::printf("%-22s: %6lld particles, %6lld cells, dt = %.2e s\n", label.c_str(),
              static_cast<long long>(res.particles),
              static_cast<long long>(sim->active_cells()), sim->dt());

  diag::CsvSeries series({"t_fs", "cumulative_s", "step_ms", "cells", "particles"});
  diag::Stopwatch total;
  diag::Stopwatch lap;
  double post_removal_s = 0;
  int post_removal_steps = 0;
  bool removed = false;
  int lap_steps = 0;
  while (sim->time() < t_end) {
    lap.restart();
    sim->step();
    const double step_s = lap.seconds();
    ++lap_steps;
    const bool patch_active = sim->patch() != nullptr && sim->patch()->active();
    if (mr && !patch_active && !removed) {
      removed = true;
      res.removal_time = sim->time();
    }
    // "After removal" window (same physical interval for every case).
    if (sim->time() > 75e-15) {
      post_removal_s += step_s;
      ++post_removal_steps;
    }
    if (sim->step_count() % 25 == 0) {
      series.add_row({sim->time() * 1e15, total.seconds(), step_s * 1e3,
                      static_cast<Real>(sim->active_cells()),
                      static_cast<Real>(sim->total_particles())});
    }
  }
  res.total_s = total.seconds();
  res.post_removal_step_ms = post_removal_s / post_removal_steps * 1e3;
  series.write(g_out.path("mr_savings_" + name + ".csv"));
  std::printf("%-22s: total %.2f s; step after t=75fs: %.2f ms%s\n\n", label.c_str(),
              res.total_s, res.post_removal_step_ms,
              mr ? (removed ? " (patch removed)" : " (patch NOT removed!)") : "");
  return res;
}

// Analytic memory-savings sweep for --json: a cube of side `n` (2D: n^2)
// with a patch covering `fraction` of the cells at `ratio` refinement, 4
// particles per level-0 cell (and per fine patch cell). Ghost/PML cells are
// left out of the model points: the structural cross-check against the
// *measured* ledger (which includes them) lives in the test suite; here the
// sweep isolates the ratio^dim field/particle scaling the paper's
// affordability argument rests on.
obs::MrSavings model_point(int dim, int ratio, double fraction, std::int64_t* actual_n) {
  const std::int64_t n = dim == 2 ? 512 : 64;
  std::int64_t cells = 1;
  for (int d = 0; d < dim; ++d) { cells *= n; }
  const auto patch_cells = static_cast<std::int64_t>(fraction * double(cells));
  std::int64_t fine_cells = patch_cells;
  for (int d = 0; d < dim; ++d) { fine_cells *= ratio; }

  obs::MrSavingsInputs in;
  in.dim = dim;
  in.ratio = ratio;
  in.level0_grown_cells = cells;
  in.fine_grown_cells = fine_cells;
  in.coarse_grown_cells = patch_cells;
  in.num_particles = 4 * (cells + fine_cells);
  if (actual_n != nullptr) { *actual_n = cells; }
  return obs::analytic_mr_savings(in);
}

void write_savings_json(const std::string& path) {
  struct Pt {
    int dim, ratio;
    double fraction;
  };
  const std::vector<Pt> sweep = {{2, 2, 0.05}, {2, 2, 0.20}, {2, 4, 0.05},
                                 {3, 2, 0.05}, {3, 2, 0.20}, {3, 4, 0.05}};
  std::ofstream os(path);
  obs::json::Writer w(os);
  w.begin_object();
  w.field("bench", "mr_savings");
  w.begin_array("points");
  std::printf("analytic MR memory savings (uniform-fine bytes / MR bytes):\n");
  for (const auto& p : sweep) {
    std::int64_t cells = 0;
    const auto s = model_point(p.dim, p.ratio, p.fraction, &cells);
    std::printf("  %dD ratio %d patch %4.0f%%: %6.2fx\n", p.dim, p.ratio,
                100 * p.fraction, s.factor);
    w.begin_object()
        .field("dim", std::int64_t(p.dim))
        .field("ratio", std::int64_t(p.ratio))
        .field("patch_fraction", p.fraction)
        .field("actual_bytes", s.actual_bytes)
        .field("uniform_fine_bytes", s.uniform_fine_bytes)
        .field("savings", s.factor)
        .end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  std::printf("wrote %s\n\n", path.c_str());
}

} // namespace

int main(int argc, char** argv) {
  g_out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--quick") == 0) { quick = true; }
  }
  if (json_out) { write_savings_json(g_out.path("BENCH_mr_savings.json")); }
  if (quick) { return 0; }

  std::printf("Fig. 6: time-to-solution with and without mesh refinement\n");
  std::printf("(moving window starts at %.0f fs — the dashed line; the MR patch is\n",
              window_start * 1e15);
  std::printf("removed when the foil leaves the window — the star)\n\n");

  const auto a = run_case("with_mr", "a) with MR", true, 1, 1);
  const auto b = run_case("2x_ppc4", "b) no MR, 2x res, ppc/4", false, 2, 4);
  const auto c = run_case("2x_full", "c) no MR, 2x res", false, 2, 1);

  std::printf("summary (paper: MR 1.5x-4x faster after patch removal):\n");
  std::printf("  time-to-solution:        b/a = %.2fx   c/a = %.2fx\n",
              b.total_s / a.total_s, c.total_s / a.total_s);
  std::printf("  step cost after removal: b/a = %.2fx   c/a = %.2fx\n",
              b.post_removal_step_ms / a.post_removal_step_ms,
              c.post_removal_step_ms / a.post_removal_step_ms);
  std::printf("  patch removed at t = %.1f fs\n", a.removal_time * 1e15);
  std::printf("  series written to %s/mr_savings_{with_mr,2x_ppc4,2x_full}.csv\n",
              g_out.dir().c_str());
  return 0;
}
