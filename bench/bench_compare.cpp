// bench_compare — the perf-regression gate CLI over BENCH_*.json files.
//
//   bench_compare [options] BASELINE.json CURRENT.json
//   bench_compare [options] BASELINE_DIR CURRENT_DIR
//   bench_compare --schema FILE...
//
// File mode diffs one bench document against its baseline; directory mode
// iterates every BENCH_*.json in BASELINE_DIR and diffs it against the
// same-named file in CURRENT_DIR (a missing current file is a failure, so a
// bench that silently stops running trips the gate). --schema validates the
// per-kind required keys without needing a baseline. Exit codes: 0 = all
// metrics within tolerance, 1 = regression / missing metric / schema error,
// 2 = usage or I/O error. Run from ctest as the `bench_smoke` gate (see
// bench/bench_smoke.sh) against the committed bench/baselines/.
//
// Options:
//   --rel-tol X    relative tolerance (default 0.05)
//   --abs-tol X    absolute tolerance floor (default 1e-12)
//   --ignore S     skip metric paths containing S (repeatable)
//   --verbose      print every metric row, not just non-Pass ones

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/bench_diff.hpp"
#include "src/obs/json.hpp"

namespace fs = std::filesystem;
using namespace mrpic::obs;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rel-tol X] [--abs-tol X] [--ignore S]... [--verbose] \\\n"
               "          BASELINE CURRENT     (two files or two directories)\n"
               "       %s --schema FILE...\n",
               argv0, argv0);
  return 2;
}

bool load_json(const std::string& path, json::Value& out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << is.rdbuf();
  try {
    out = json::parse(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

// Returns 0 ok / 1 regression / 2 I/O error.
int compare_files(const std::string& base_path, const std::string& cur_path,
                  const benchdiff::Options& opt, bool verbose) {
  json::Value base, cur;
  if (!load_json(base_path, base) || !load_json(cur_path, cur)) { return 2; }
  const auto report = benchdiff::compare(base, cur, opt);
  std::printf("%s vs %s\n", base_path.c_str(), cur_path.c_str());
  std::ostringstream os;
  benchdiff::print_report(report, os, verbose);
  std::fputs(os.str().c_str(), stdout);
  return report.ok() ? 0 : 1;
}

int schema_mode(const std::vector<std::string>& files) {
  if (files.empty()) { return 2; }
  int rc = 0;
  for (const auto& f : files) {
    json::Value doc;
    if (!load_json(f, doc)) { return 2; }
    const auto errors = benchdiff::validate_schema(doc);
    if (errors.empty()) {
      std::printf("%s: schema OK\n", f.c_str());
    } else {
      rc = 1;
      for (const auto& e : errors) {
        std::printf("%s: schema error: %s\n", f.c_str(), e.c_str());
      }
    }
  }
  return rc;
}

} // namespace

int main(int argc, char** argv) {
  benchdiff::Options opt;
  bool verbose = false;
  bool schema = false;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--rel-tol") {
      opt.rel_tol = std::atof(need_value("--rel-tol"));
    } else if (a == "--abs-tol") {
      opt.abs_tol = std::atof(need_value("--abs-tol"));
    } else if (a == "--ignore") {
      opt.ignore.emplace_back(need_value("--ignore"));
    } else if (a == "--verbose") {
      verbose = true;
    } else if (a == "--schema") {
      schema = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown option %s\n", a.c_str());
      return usage(argv[0]);
    } else {
      positional.push_back(a);
    }
  }

  if (schema) { return schema_mode(positional); }
  if (positional.size() != 2) { return usage(argv[0]); }
  const std::string& base = positional[0];
  const std::string& cur = positional[1];

  std::error_code ec;
  if (!fs::is_directory(base, ec)) { return compare_files(base, cur, opt, verbose); }

  // Directory mode: every BENCH_*.json in the baseline dir must exist and
  // pass in the current dir.
  if (!fs::is_directory(cur, ec)) {
    std::fprintf(stderr, "bench_compare: %s is a directory but %s is not\n", base.c_str(),
                 cur.c_str());
    return 2;
  }
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(base, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      names.push_back(name);
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "bench_compare: no BENCH_*.json in %s\n", base.c_str());
    return 2;
  }
  std::sort(names.begin(), names.end());
  int rc = 0;
  for (const auto& name : names) {
    const std::string cur_path = (fs::path(cur) / name).string();
    if (!fs::exists(cur_path, ec)) {
      std::printf("%s: MISSING in %s\n", name.c_str(), cur.c_str());
      rc = std::max(rc, 1);
      continue;
    }
    const int r = compare_files((fs::path(base) / name).string(), cur_path, opt, verbose);
    rc = std::max(rc, r);
    std::printf("\n");
  }
  std::printf("bench_compare: %zu file(s) compared -> %s\n", names.size(),
              rc == 0 ? "OK" : "REGRESSION");
  return rc;
}
