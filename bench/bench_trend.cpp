// bench_trend — CLI over the bench-history ledger (obs::bench_history):
//
//   bench_trend --append LEDGER BENCH.json...   append one record per file
//   bench_trend LEDGER [--last N]               print per-bench metric deltas
//                                               across the last N records
//   bench_trend LEDGER --csv [--last N]         same window as one flat CSV
//                                               (bench,metric,record,
//                                               unix_time,value) for
//                                               spreadsheets / plotting
//
// Append mode is what bench_smoke runs after the regression gate: each
// produced BENCH_*.json contributes one schema-tagged JSONL line, so the
// ledger accumulates the perf trajectory across commits. Trend mode groups
// the ledger by bench kind and prints, for every metric present in the most
// recent record, its value per retained entry plus the delta from the
// previous one — the "did efficiency drift" question answered locally.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/bench_history.hpp"
#include "src/obs/json.hpp"

using namespace mrpic;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --append LEDGER BENCH.json...\n"
               "       %s LEDGER [--last N] [--csv]\n",
               prog, prog);
  return 2;
}

std::string basename_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

int append_mode(const std::string& ledger, const std::vector<std::string>& files) {
  int appended = 0;
  for (const auto& f : files) {
    std::ifstream is(f);
    if (!is) {
      std::fprintf(stderr, "bench_trend: cannot open %s\n", f.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    obs::json::Value doc;
    try {
      doc = obs::json::parse(ss.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_trend: %s: %s\n", f.c_str(), e.what());
      return 1;
    }
    auto entry = obs::extract_bench_history(doc, basename_of(f));
    if (entry.bench.empty()) {
      std::fprintf(stderr, "bench_trend: %s has no 'bench' tag, skipped\n", f.c_str());
      continue;
    }
    entry.unix_time = static_cast<std::int64_t>(std::time(nullptr));
    if (!obs::append_bench_history(ledger, entry)) {
      std::fprintf(stderr, "bench_trend: cannot append to %s\n", ledger.c_str());
      return 1;
    }
    ++appended;
  }
  std::printf("bench_trend: appended %d record(s) to %s\n", appended, ledger.c_str());
  return 0;
}

// Metric names stay bare in the CSV: extract_bench_history paths are
// [A-Za-z0-9_./]-only, so no quoting/escaping is ever needed.
int csv_mode(const std::string& ledger, int last) {
  std::size_t skipped = 0;
  std::vector<obs::BenchHistoryEntry> entries;
  try {
    entries = obs::read_bench_history(ledger, &skipped);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_trend: %s\n", e.what());
    return 1;
  }
  if (skipped > 0) {
    std::fprintf(stderr, "bench_trend: %zu unrecognized line(s) skipped\n", skipped);
  }

  std::map<std::string, std::vector<const obs::BenchHistoryEntry*>> by_bench;
  for (const auto& e : entries) { by_bench[e.bench].push_back(&e); }

  std::printf("bench,metric,record,unix_time,value\n");
  for (const auto& [bench, hist] : by_bench) {
    const std::size_t keep = std::min<std::size_t>(hist.size(), std::size_t(last));
    const std::size_t first = hist.size() - keep;
    for (std::size_t i = first; i < hist.size(); ++i) {
      for (const auto& [metric, value] : hist[i]->metrics) {
        std::printf("%s,%s,%zu,%lld,%.17g\n", bench.c_str(), metric.c_str(), i,
                    static_cast<long long>(hist[i]->unix_time), value);
      }
    }
  }
  return 0;
}

int trend_mode(const std::string& ledger, int last) {
  std::size_t skipped = 0;
  std::vector<obs::BenchHistoryEntry> entries;
  try {
    entries = obs::read_bench_history(ledger, &skipped);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_trend: %s\n", e.what());
    return 1;
  }
  if (skipped > 0) {
    std::printf("(%zu unrecognized line(s) skipped)\n", skipped);
  }
  if (entries.empty()) {
    std::printf("ledger %s is empty\n", ledger.c_str());
    return 0;
  }

  // Group by bench kind, preserving ledger (append) order.
  std::map<std::string, std::vector<const obs::BenchHistoryEntry*>> by_bench;
  for (const auto& e : entries) { by_bench[e.bench].push_back(&e); }

  for (const auto& [bench, hist] : by_bench) {
    const std::size_t keep = std::min<std::size_t>(hist.size(), std::size_t(last));
    const std::size_t first = hist.size() - keep;
    std::printf("== %s (%zu of %zu record(s))\n", bench.c_str(), keep, hist.size());
    // Metric set of the most recent record drives the rows.
    for (const auto& [metric, latest] : hist.back()->metrics) {
      (void)latest;
      std::printf("  %-44s", metric.c_str());
      double prev = 0;
      bool have_prev = false;
      for (std::size_t i = first; i < hist.size(); ++i) {
        const auto it = hist[i]->metrics.find(metric);
        if (it == hist[i]->metrics.end()) {
          std::printf(" %12s", "-");
          have_prev = false;
          continue;
        }
        if (have_prev && prev != 0) {
          std::printf(" %12.6g (%+.2f%%)", it->second,
                      100 * (it->second - prev) / std::fabs(prev));
        } else {
          std::printf(" %12.6g", it->second);
        }
        prev = it->second;
        have_prev = true;
      }
      std::printf("\n");
    }
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) { return usage(argv[0]); }
  if (std::strcmp(argv[1], "--append") == 0) {
    if (argc < 4) { return usage(argv[0]); }
    std::vector<std::string> files;
    for (int i = 3; i < argc; ++i) { files.emplace_back(argv[i]); }
    return append_mode(argv[2], files);
  }
  std::string ledger;
  int last = 10;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
      last = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (argv[i][0] != '-') {
      ledger = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (ledger.empty() || last <= 0) { return usage(argv[0]); }
  return csv ? csv_mode(ledger, last) : trend_mode(ledger, last);
}
