// Sec. V.C reproduction: multi-level dynamic load balancing for GPUs.
// Three experiments on the simulated cluster:
//
//  1. Strategy ablation under a strongly imbalanced particle distribution
//     (laser on a dense slab: most particles in a few boxes), comparing
//     round-robin / space-filling-curve / knapsack step times. The paper
//     (via its Ref. [32]) credits dynamic load balancing with up to 3.8x on
//     laser/dense-target problems.
//
//  2. Dynamic rebalancing over a moving hot spot: costs drift (as when an
//     MR patch is removed or a laser sweeps the target) and the balancer
//     remaps when the imbalance threshold trips.
//
//  3. PML co-location: placing the PML boxes on the rank of their nearest
//     parent box versus round-robin placement — the paper reports 25% from
//     this optimization; the harness reports the change in inter-rank PML
//     exchange traffic.

#include <cstdio>
#include <vector>

#include "src/cluster/sim_cluster.hpp"
#include "src/dist/load_balancer.hpp"
#include "src/fields/pml.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/scaling_model.hpp"

using namespace mrpic;

namespace {

// Per-box cost of a dense slab covering the first quarter of x: boxes over
// the slab hold solid-density particle load, the rest near-vacuum.
std::vector<Real> slab_costs(const BoxArray<3>& ba, const Box3& domain) {
  std::vector<Real> costs(ba.size());
  // Dense target in one corner octant of the domain: spatially clustered,
  // so the locality-preserving SFC stacks the hot boxes on few ranks.
  for (int i = 0; i < ba.size(); ++i) {
    bool hot = true;
    for (int d = 0; d < 3; ++d) { hot = hot && ba[i].lo(d) < domain.lo(d) + domain.length(d) / 2; }
    costs[i] = hot ? 100.0 : 1.0; // ~solid vs trace plasma, per ms
  }
  return costs;
}

} // namespace

int main() {
  const auto& summit = perf::machine_by_name("Summit");
  cluster::CommModel cm;
  cm.latency_s = summit.net_latency_s;
  cm.bandwidth_Bps = summit.net_bandwidth_Bps;

  const Box3 domain(IntVect3(0, 0, 0), IntVect3(127, 127, 127));
  const auto ba = BoxArray<3>::decompose(domain, 32); // 64 boxes
  const int nranks = 16;
  cluster::SimCluster cl(nranks, cm);
  auto costs = slab_costs(ba, domain);
  for (auto& v : costs) { v *= 1e-3; } // ms -> s

  std::printf("1) strategy ablation: corner-target workload, %d boxes on %d ranks\n",
              ba.size(), nranks);
  std::printf("   (baseline = cost-blind SFC, WarpX's default placement, Sec. V.C)\n");
  std::printf("   %-18s %12s %12s %12s %10s\n", "strategy", "compute s", "comm s",
              "total s", "speedup");
  // Paper default: SFC is built cost-blind; the LB strategies use costs.
  const auto dm_sfc =
      dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
  const double t_sfc = cl.step_cost(ba, dm_sfc, costs, 9, 4).total_s;
  struct Variant {
    const char* name;
    dist::Strategy strategy;
    bool use_costs;
  };
  const Variant variants[] = {
      {"sfc (no LB)", dist::Strategy::SpaceFillingCurve, false},
      {"round_robin", dist::Strategy::RoundRobin, false},
      {"knapsack+costs", dist::Strategy::Knapsack, true},
      {"sfc+costs", dist::Strategy::SpaceFillingCurve, true},
  };
  for (const auto& v : variants) {
    const auto dm = dist::DistributionMapping::make(
        ba, nranks, v.strategy, v.use_costs ? costs : std::vector<Real>{});
    const auto cost = cl.step_cost(ba, dm, costs, 9, 4);
    std::printf("   %-18s %12.5f %12.5f %12.5f %9.2fx\n", v.name, cost.compute_s,
                cost.comm_s, cost.total_s, t_sfc / cost.total_s);
  }
  std::printf("   paper reference: dynamic LB gave up to 3.8x on laser-target runs [32]\n\n");

  std::printf("2) dynamic rebalancing with a drifting hot spot\n");
  dist::LoadBalanceConfig lbc;
  lbc.strategy = dist::Strategy::Knapsack;
  lbc.imbalance_threshold = 1.25;
  dist::LoadBalancer lb(lbc);
  auto dm = dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
  double with_lb = 0, without_lb = 0;
  const auto dm_static = dm;
  for (int step = 0; step < 16; ++step) {
    // Hot region sweeps across x as the laser/window advances.
    std::vector<Real> sweep(ba.size());
    const int hot_lo = (step * 8) % 128;
    for (int i = 0; i < ba.size(); ++i) {
      const bool hot = ba[i].lo(0) >= hot_lo && ba[i].lo(0) < hot_lo + 32;
      sweep[i] = (hot ? 40.0 : 1.0) * 1e-3;
    }
    lb.record_costs(sweep);
    if (lb.should_rebalance(dm)) {
      const auto before = dm;
      dm = lb.rebalance(ba, nranks);
      lb.count_rebalance(before, dm);
    }
    with_lb += cl.step_cost(ba, dm, sweep, 9, 4).total_s;
    without_lb += cl.step_cost(ba, dm_static, sweep, 9, 4).total_s;
  }
  std::printf("   16 steps, %d rebalances: static %.4f s, dynamic %.4f s -> %.2fx\n\n",
              lb.num_rebalances(), without_lb, with_lb, without_lb / with_lb);

  std::printf("3) PML co-location (paper: 25%% gain)\n");
  // Domain boxes + a PML ring chopped to the same granularity.
  const auto dm_parent =
      dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
  fields::PmlConfig pml_cfg;
  pml_cfg.npml = 16;
  const Geometry<3> geom(domain, RealVect3(0, 0, 0), RealVect3(1, 1, 1), {});
  fields::Pml<3> pml(geom, domain, {true, true, true}, pml_cfg);
  // Chop the ring boxes to 32^3 granularity for placement.
  std::vector<Box3> pml_boxes;
  for (const auto& b : pml.box_array().boxes()) {
    for (const auto& p : b.chop(IntVect3(32))) { pml_boxes.push_back(p); }
  }
  const BoxArray<3> pml_ba(pml_boxes);
  const auto dm_colocated = dist::colocate_pml(pml_ba, ba, dm_parent);
  const auto dm_rr =
      dist::DistributionMapping::make(pml_ba, nranks, dist::Strategy::RoundRobin);

  // PML <-> parent exchange traffic: for each PML box, bytes to its
  // overlapping (grown) parent boxes that live on other ranks.
  auto pml_traffic = [&](const dist::DistributionMapping& pml_dm) {
    std::int64_t bytes = 0;
    for (int i = 0; i < pml_ba.size(); ++i) {
      const auto gi = pml_ba[i].grown(4);
      for (int j = 0; j < ba.size(); ++j) {
        const auto region = gi & ba[j];
        if (region.empty()) { continue; }
        if (pml_dm.rank(i) != dm_parent.rank(j)) {
          bytes += region.num_cells() * 12 * 8; // split components, DP
        }
      }
    }
    return bytes;
  };
  const auto b_rr = pml_traffic(dm_rr);
  const auto b_co = pml_traffic(dm_colocated);
  std::printf("   PML<->parent inter-rank traffic: round-robin %lld B, co-located %lld B\n",
              static_cast<long long>(b_rr), static_cast<long long>(b_co));
  std::printf("   reduction: %.1f%% of the exchange stays on-rank\n",
              100.0 * (1.0 - static_cast<double>(b_co) / b_rr));
  return 0;
}
