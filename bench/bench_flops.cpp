// Table III reproduction: sustained Flop/s per device and at system scale,
// DP and mixed-precision modes, with % of vendor peak and % of HPCG.
//
// Method (mirrors Sec. VI.B with source-level counters substituting for
// Nsight/ROCm-profiler/fipp): algorithmic FLOP counts per particle and per
// cell for the order-3 PIC stages are combined with the memory-bound
// step-time model (calibrated on Table IV, see machine.hpp) to obtain
// achieved Flop/s per device; system-scale numbers multiply by devices and
// the weak-scaling efficiency of the largest run, exactly as the paper
// scales its measured few-node counts.

#include <cstdio>

#include "src/perf/flop_counter.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/scaling_model.hpp"

using namespace mrpic;

int main() {
  // Uniform-plasma FOM workload: 1 particle per cell.
  const double cells_per_device = 1.6e8 / 4; // typical GPU fill (Table IV scale)
  const double parts_per_device = cells_per_device;

  const auto ops_pp = perf::pic_flops_per_particle_3d(3);
  const auto ops_pc = perf::pic_flops_per_cell_3d();
  const double flops_per_device_step = static_cast<double>(ops_pp.flops()) * parts_per_device +
                                       static_cast<double>(ops_pc.flops()) * cells_per_device;

  std::printf("Table III: sustained Flop/s (order-3 PIC, uniform plasma, 1 ppc)\n");
  std::printf("algorithmic counts: %lld flops/particle/step, %lld flops/cell/step\n\n",
              static_cast<long long>(ops_pp.flops()), static_cast<long long>(ops_pc.flops()));
  std::printf("%-11s %-5s %16s %10s %16s %10s\n", "Machine", "Mode", "TFlop/s/device",
              "% peak", "system PFlop/s", "% HPCG");
  std::printf("%.*s\n", 74,
              "--------------------------------------------------------------------------");

  perf::StepTimeModel st;
  for (const auto& m : perf::catalogue()) {
    const auto weak = perf::WeakScalingModel::for_machine(m);
    const double eff = weak.efficiency(m.weak.nodes_full);
    for (bool mp : {false, true}) {
      const double t_dev = st.node_seconds(m, cells_per_device, parts_per_device, mp) /
                           m.devices_per_node * m.devices_per_node; // per device directly
      const double t = st.node_seconds(m, cells_per_device * m.devices_per_node,
                                       parts_per_device * m.devices_per_node, mp);
      (void)t_dev;
      const double dev_flops = flops_per_device_step / t; // Flop/s per device
      // Mixed precision: most arithmetic runs in SP, the numerically
      // sensitive particle ops stay DP (Sec. VI): report the split.
      const double sp_share = mp ? 0.75 : 0.0;
      const double dp_flops = dev_flops * (1.0 - sp_share);
      const double sp_flops = dev_flops * sp_share;
      const double system_pflops =
          dev_flops * m.devices_per_node * m.weak.nodes_full * eff / 1e15;
      char hpcg[32];
      if (m.hpcg_pflops > 0) {
        std::snprintf(hpcg, sizeof(hpcg), "%.0f%%", 100 * system_pflops / m.hpcg_pflops);
      } else {
        std::snprintf(hpcg, sizeof(hpcg), "n/a");
      }
      if (!mp) {
        std::printf("%-11s %-5s %13.2f DP %9.1f%% %16.2f %10s\n", m.name.c_str(), "DP",
                    dp_flops / 1e12, 100 * dp_flops / (m.dp_tflops_device * 1e12),
                    system_pflops, hpcg);
      } else {
        std::printf("%-11s %-5s %13.2f SP %9.1f%%\n", "", "MP", sp_flops / 1e12,
                    100 * sp_flops / (m.sp_tflops_device * 1e12));
        std::printf("%-11s %-5s %13.2f DP %9.1f%%\n", "", "", dp_flops / 1e12,
                    100 * dp_flops / (m.dp_tflops_device * 1e12));
      }
    }
    std::printf("\n");
  }

  std::printf("paper (Table III): Frontier DP 1.58 (3.3%%) -> 43.45 PF;  Fugaku DP 0.037\n");
  std::printf("(1.1%%) -> 5.31 PF (34.7%% HPCG);  Summit DP 0.62 (8.3%%) -> 11.79 PF (435%%\n");
  std::printf("HPCG);  Perlmutter DP 1.26 (12.9%%) -> 3.38 PF (223%% HPCG). The shape to\n");
  std::printf("match: single-digit %% of peak (memory-bound PIC), Summit/Perlmutter HPCG\n");
  std::printf("ratios in the hundreds of %%, Fugaku far below its HPCG.\n");
  return 0;
}
