// Table IV reproduction: the WarpX figure of merit (Eq. 1),
//   FOM = (0.1 N_c + 0.9 N_p) / (avg seconds per step * percent of system),
// across the ECP measurement history. For each paper row the harness
// recomputes the FOM from the memory-bound step-time model at that row's
// problem size, machine, precision mode and code-era speed factor, and
// prints model vs paper. The 2022 rows are the calibration anchors of the
// model; the earlier rows test that the era factors recover the measured
// progress.

#include <cstdio>
#include <cmath>
#include <string>

#include "src/perf/fom.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/scaling_model.hpp"

using namespace mrpic;

int main() {
  std::printf("Table IV: FOM progress over time (alpha=%.1f, beta=%.1f)\n\n",
              perf::fom_alpha, perf::fom_beta);
  std::printf("%-6s %-12s %10s %8s %6s %12s %12s %7s\n", "Date", "Machine", "Nc/node",
              "Nodes", "Mode", "paper FOM", "model FOM", "ratio");
  std::printf("%.*s\n", 80,
              "--------------------------------------------------------------------------------");

  perf::StepTimeModel st;
  double worst_ratio = 1, best_ratio = 1;
  for (const auto& row : perf::fom_history()) {
    double model_fom = 0;
    if (row.machine == "Cori") {
      // Cori (KNL) predates the catalogue; report the paper value only.
      std::printf("%-6s %-12s %10.1e %8d %6s %12.1e %12s %7s\n", row.date.c_str(),
                  "Cori (KNL)", row.cells_per_node, row.nodes, "DP", row.reported_fom,
                  "n/a", "");
      continue;
    }
    const auto& m = perf::machine_by_name(row.machine);
    const double n_c = row.cells_per_node * row.nodes;
    const double n_p = n_c; // uniform plasma FOM runs use ~1 ppc
    const double t_step = st.node_seconds(m, row.cells_per_node, row.cells_per_node,
                                          row.mixed_precision) /
                          row.code_speed_factor;
    const double percent = static_cast<double>(row.nodes) / m.total_nodes;
    model_fom = perf::figure_of_merit(n_c, n_p, t_step, percent);
    const double ratio = model_fom / row.reported_fom;
    worst_ratio = std::min(worst_ratio, ratio);
    best_ratio = std::max(best_ratio, ratio);
    std::printf("%-6s %-12s %10.1e %8d %6s %12.1e %12.1e %6.2fx\n", row.date.c_str(),
                row.machine.c_str(), row.cells_per_node, row.nodes,
                row.mixed_precision ? "MP" : "DP", row.reported_fom, model_fom, ratio);
  }

  std::printf("\nmodel/paper ratio range: %.2fx .. %.2fx (target: every row within ~2x,\n",
              worst_ratio, best_ratio);
  std::printf("monotone rise on Summit, Frontier highest, Fugaku MP ~4x its DP)\n");

  // The paper's headline ordering (Sec. VII.C): Frontier > Fugaku(MP) >
  // Summit > Perlmutter at full scale, July 2022.
  std::printf("\nfull-machine extrapolated FOM (July 2022 code):\n");
  for (const char* name : {"Frontier", "Fugaku", "Summit", "Perlmutter"}) {
    const auto& m = perf::machine_by_name(name);
    // Use the largest Table IV row for this machine.
    double cells = 0;
    bool mp = false;
    double code = 1.0;
    for (const auto& row : perf::fom_history()) {
      if (row.machine == name) {
        cells = row.cells_per_node;
        mp = row.mixed_precision;
        code = row.code_speed_factor;
      }
    }
    const double t = st.node_seconds(m, cells, cells, mp) / code;
    const double fom =
        perf::figure_of_merit(cells * m.total_nodes, cells * m.total_nodes, t, 1.0);
    std::printf("  %-11s %10.2e (%s)\n", name, fom, mp ? "MP" : "DP");
  }
  return 0;
}
