// Fig. 7 reproduction — the physics result of the paper's science case, at
// reduced 2D scale. Three runs:
//
//   1. hybrid solid-gas target, WITH mesh refinement  (paper: Summit, MR)
//   2. hybrid solid-gas target, no MR                 (paper: Fugaku run)
//   3. gas-only target (no foil), same laser          (the conventional
//      LWFA baseline the hybrid scheme improves on, Sec. III)
//
// Regenerated panels:
//   (a) beam charge in the simulation window vs time, MR vs no-MR — the
//       validation argument of Sec. VIII.A: the two must agree on the
//       injected charge after the target leaves the window, and the hybrid
//       target must inject far more charge than the gas-only baseline;
//   (b) electron energy spectrum of the injected beam (peaked, finite
//       spread; paper: <10% above 100 MeV at full scale);
//   (c,d) field + electron-density snapshots, MR vs no-MR, with a
//       normalized L2 agreement metric.
//
// Output: hybrid_charge_{mr,nomr,gasonly}.csv, hybrid_spectrum_{mr,nomr}.csv,
//         hybrid_snapshot_{mr,nomr}_{field,density}.csv

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/spectrum.hpp"

using namespace mrpic;
using namespace mrpic::constants;

namespace {

diag::OutputDir g_out; // set in main from --outdir

constexpr Real t_end = 150e-15;
const Real mev = 1e6 * q_e;

struct RunResult {
  std::unique_ptr<core::Simulation<2>> sim;
  int gas_e = -1, solid_e = -1;
  diag::CsvSeries charge{{"t_fs", "beam_charge_pC", "solid_charge_pC"}};
  Real final_solid_charge = 0;
  Real final_beam_charge = 0;
};

std::unique_ptr<RunResult> run(const std::string& name, bool mr, bool with_foil) {
  auto r = std::make_unique<RunResult>();
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(479, 39));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(24e-6, 8e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 8;
  cfg.max_grid_size = IntVect2(120, 40);
  cfg.shape_order = 3;
  cfg.mr_remove_when_lo_above = 4.6e-6;
  // MR and no-MR compared at the same (fine-CFL) dt, as in the paper's
  // validation protocol.
  const Geometry<2> fine_geom(cfg.domain.refined(2), cfg.prob_lo, cfg.prob_hi,
                              cfg.periodic);
  cfg.forced_dt = fields::cfl_dt(fine_geom, cfg.cfl);
  r->sim = std::make_unique<core::Simulation<2>>(cfg);
  auto& sim = *r->sim;

  const Real nc = plasma::critical_density(0.8e-6);
  plasma::InjectorConfig<2> gas;
  gas.density = plasma::gas_jet<2>(0.025 * nc, 5.5e-6, 800e-6, 2e-6);
  gas.ppc = IntVect2(1, 2);
  r->gas_e = sim.add_species(particles::Species::electron("gas_e"), gas);

  if (with_foil) {
    plasma::InjectorConfig<2> solid;
    solid.density = plasma::slab<2>(15 * nc, 3e-6, 4.5e-6);
    // Denser sampling than the paper's 3x2(x3): at this reduced scale the
    // trapped-from-solid population is small, so lighter macroparticles
    // keep its charge statistically meaningful.
    solid.ppc = IntVect2(4, 4);
    r->solid_e = sim.add_species(particles::Species::electron("solid_e"), solid);
    sim.add_species(particles::Species::proton("solid_i"), solid);
  }

  laser::LaserConfig lc;
  lc.a0 = 7.0;
  lc.wavelength = 0.8e-6;
  lc.waist = 3e-6;
  lc.duration = 9e-15;
  lc.t_peak = 16e-15;
  lc.x_antenna = 18e-6;
  lc.center = {5e-6, 0};
  lc.focal_distance = 13.5e-6; // focus on the foil surface
  lc.polarization = 1;
  sim.add_laser(lc);

  if (mr) {
    mr::MRPatch<2>::Config pcfg;
    pcfg.region = Box2(IntVect2(40, 4), IntVect2(119, 35)); // 2..6 um
    pcfg.ratio = 2;
    pcfg.transition_cells = 2;
    pcfg.pml.npml = 8;
    sim.enable_mr_patch(pcfg);
  }
  sim.set_moving_window(0, c, 70e-15);
  sim.init();

  std::printf("%-10s: %lld particles%s\n", name.c_str(),
              static_cast<long long>(sim.total_particles()),
              mr ? " (MR patch on the foil)" : "");

  while (sim.time() < t_end) {
    sim.step();
    if (sim.step_count() % 50 == 0) {
      Real q_solid = 0;
      if (r->solid_e >= 0) {
        q_solid = diag::charge_above<2>(sim.species_level0(r->solid_e), 1 * mev) +
                  diag::charge_above<2>(sim.species_patch(r->solid_e), 1 * mev);
      }
      const Real q_all = q_solid +
                         diag::charge_above<2>(sim.species_level0(r->gas_e), 1 * mev) +
                         diag::charge_above<2>(sim.species_patch(r->gas_e), 1 * mev);
      r->charge.add_row({sim.time() * 1e15, q_all * 1e12, q_solid * 1e12});
      r->final_beam_charge = q_all;
      r->final_solid_charge = q_solid;
    }
  }
  r->charge.write(g_out.path("hybrid_charge_" + name + ".csv"));
  return r;
}

// Normalized L2 difference of one component over the valid region (for the
// Fig. 7c/7d MR vs no-MR snapshot comparison).
Real field_l2_diff(const MultiFab<2>& a, const MultiFab<2>& b, int comp) {
  Real diff2 = 0, norm2 = 0;
  for (int m = 0; m < a.num_fabs(); ++m) {
    const auto aa = a.const_array(m);
    const auto bb = b.const_array(m);
    const auto& vb = a.valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        const Real d = aa(i, j, 0, comp) - bb(i, j, 0, comp);
        diff2 += d * d;
        norm2 += aa(i, j, 0, comp) * aa(i, j, 0, comp);
      }
    }
  }
  return norm2 > 0 ? std::sqrt(diff2 / norm2) : Real(0);
}

void write_spectrum(const std::string& name, core::Simulation<2>& sim, int solid_e) {
  auto spec = diag::energy_spectrum<2>(sim.species_level0(solid_e), 0.5 * mev, 40 * mev, 80);
  const auto beam = diag::analyze_beam(spec, q_e);
  std::printf("  %-5s injected-beam spectrum: peak %5.2f MeV, spread %5.1f%%, "
              "charge %8.3f nC/m\n",
              name.c_str(), beam.peak_energy / mev, 100 * beam.energy_spread,
              beam.charge * 1e9);
  diag::CsvSeries csv({"energy_MeV", "dN"});
  for (std::size_t b = 0; b < spec.counts.size(); ++b) {
    csv.add_row({spec.bin_center(b) / mev, spec.counts[b]});
  }
  csv.write(g_out.path("hybrid_spectrum_" + name + ".csv"));
}

} // namespace

int main(int argc, char** argv) {
  g_out = diag::OutputDir::from_args(argc, argv);
  std::printf("Fig. 7: hybrid solid-gas target science case (reduced 2D)\n\n");

  auto r_mr = run("mr", true, true);
  auto r_nomr = run("nomr", false, true);
  auto r_gas = run("gasonly", false, false);

  // (a) beam charge in the window.
  std::printf("\n(a) beam charge in the window at t = %.0f fs (>1 MeV):\n", t_end * 1e15);
  std::printf("    with MR: %9.1f pC/m (injected from solid: %9.1f)\n",
              r_mr->final_beam_charge * 1e12, r_mr->final_solid_charge * 1e12);
  std::printf("    no MR:   %9.1f pC/m (injected from solid: %9.1f)\n",
              r_nomr->final_beam_charge * 1e12, r_nomr->final_solid_charge * 1e12);
  std::printf("    gas only:%9.1f pC/m (no solid injector)\n",
              r_gas->final_beam_charge * 1e12);
  // The paper's Fig. 7a validation compares the charge in the window with
  // and without MR ("the amount of injected charge ... agree well").
  const Real mr_nomr_ratio =
      r_mr->final_beam_charge / std::max(r_nomr->final_beam_charge, Real(1e-30));
  std::printf("    MR / no-MR window-charge ratio: %.3f (paper: good agreement)\n",
              mr_nomr_ratio);
  if (r_gas->final_beam_charge > 0) {
    std::printf("    hybrid / gas-only beam charge: %.1fx (the scheme's raison d'etre)\n",
                r_mr->final_beam_charge / r_gas->final_beam_charge);
  }

  // (b) spectra.
  std::printf("\n(b) injected-beam spectra:\n");
  write_spectrum("mr", *r_mr->sim, r_mr->solid_e);
  write_spectrum("nomr", *r_nomr->sim, r_nomr->solid_e);

  // (c,d) snapshots + agreement metric.
  std::printf("\n(c,d) final-field snapshots:\n");
  diag::write_field_2d(g_out.path("hybrid_snapshot_mr_field.csv"), r_mr->sim->fields().E(), fields::Y);
  diag::write_field_2d(g_out.path("hybrid_snapshot_nomr_field.csv"), r_nomr->sim->fields().E(),
                       fields::Y);
  const Real l2 = field_l2_diff(r_mr->sim->fields().E(), r_nomr->sim->fields().E(),
                                fields::Y);
  std::printf("    normalized L2(E_y) difference MR vs no-MR: %.3f\n", l2);
  std::printf("    (paper Fig. 7c/d: 'a good agreement between the two cases', with\n");
  std::printf("    slight differences attributed to incomplete convergence)\n");
  return 0;
}
