// Cost of the in-situ self-diagnostics (paper Sec. V: the production runs
// carry "light self-diagnostics" whose overhead must stay negligible): run
// the same uniform thermal plasma under a sweep of ledger cadences — from
// every-step probing with residuals down to sparse sampling — and report
// the probe seconds against the step seconds, plus the invariant verdicts
// (energy drift bounded, Esirkepov continuity at round-off) so the gate
// notices if cheaper probing ever stops seeing the physics.
//
// The probe/step second columns are host timing (noise) and are --ignore'd
// by the bench_smoke comparison; probe counts, alert counts and the ok
// verdicts are deterministic and gated against BENCH_health.json.
//
// Run: ./bench_health [--json] [--steps N] [--outdir DIR]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/diag/output_dir.hpp"
#include "src/health/monitor.hpp"
#include "src/obs/json.hpp"

using namespace mrpic;

namespace {

struct CadenceRecord {
  int ledger_interval;
  int residual_interval;
  std::int64_t steps;
  std::int64_t probes;
  std::int64_t alerts;
  std::int64_t nan_cells;
  double probe_s;
  double step_s;
  double overhead_frac;
  double energy_drift; // |E_end - E_0| / E_0 over the sampled window
  bool energy_drift_ok;
  bool continuity_ok;
};

core::SimulationConfig<2> plasma_config(int n) {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(n - 1, n - 1));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(n / 2);
  cfg.shape_order = 2;
  return cfg;
}

CadenceRecord run_cadence(int ledger_interval, int residual_interval, int steps) {
  core::Simulation<2> sim(plasma_config(32));
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);

  health::MonitorConfig hcfg;
  hcfg.log_to_stderr = false;
  hcfg.ledger_interval = ledger_interval;
  hcfg.nan_interval = ledger_interval;
  hcfg.residual_interval = residual_interval;
  sim.enable_health(hcfg);
  sim.init();
  sim.run(steps);

  CadenceRecord r{};
  r.ledger_interval = ledger_interval;
  r.residual_interval = residual_interval;
  r.steps = steps;
  const auto& mon = *sim.health();
  r.probes = mon.num_samples();
  r.alerts = mon.num_alerts();

  double e0 = NAN, e1 = NAN;
  double worst_continuity = 0;
  bool any_residual = false;
  for (const auto& s : mon.history()) {
    const double e = s.total_energy_J();
    if (std::isnan(e0)) { e0 = e; }
    e1 = e;
    if (s.nan_cells > r.nan_cells) { r.nan_cells = s.nan_cells; }
    if (!std::isnan(s.continuity_residual)) {
      any_residual = true;
      if (s.continuity_residual > worst_continuity) {
        worst_continuity = s.continuity_residual;
      }
    }
  }
  r.energy_drift = std::abs(e1 - e0) / std::max(e0, 1e-300);
  r.energy_drift_ok = r.energy_drift < 0.10;
  // Cadences that skip residuals vacuously pass (nothing probed, nothing
  // wrong); probed cadences must hold the round-off gate.
  r.continuity_ok = !any_residual || worst_continuity <= 1e-12;

  for (const auto& [name, stats] : sim.profiler().flat_totals()) {
    if (name == "health") { r.probe_s = stats.inclusive_s; }
    if (name == "step") { r.step_s = stats.inclusive_s; }
  }
  r.overhead_frac = r.step_s > 0 ? r.probe_s / r.step_s : 0;
  return r;
}

} // namespace

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  int steps = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    }
  }

  // The sweep: every-step ledger + residuals (worst case), every-step ledger
  // without the deposition-heavy residual probe, then sparser sampling.
  struct Point {
    int ledger, residual;
  };
  const std::vector<Point> sweep = {{1, 1}, {1, 10}, {1, 0}, {5, 0}, {20, 0}};

  std::printf("health-probe overhead vs cadence (%d steps, 32^2 thermal plasma)\n\n",
              steps);
  std::printf("  %-22s %7s %7s %9s %9s %9s %6s %6s\n", "cadence", "probes", "alerts",
              "probe_s", "step_s", "overhead", "drift", "cont");
  std::vector<CadenceRecord> records;
  for (const auto& p : sweep) {
    auto r = run_cadence(p.ledger, p.residual, steps);
    char label[64];
    std::snprintf(label, sizeof(label), "ledger=%d residual=%d", p.ledger, p.residual);
    std::printf("  %-22s %7lld %7lld %9.4f %9.4f %8.2f%% %6s %6s\n", label,
                static_cast<long long>(r.probes), static_cast<long long>(r.alerts),
                r.probe_s, r.step_s, 100 * r.overhead_frac,
                r.energy_drift_ok ? "ok" : "FAIL", r.continuity_ok ? "ok" : "FAIL");
    records.push_back(r);
  }

  if (json_out) {
    const std::string json_path = out.path("BENCH_health.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "health");
    w.begin_array("cadence");
    for (const auto& r : records) {
      w.begin_object()
          .field("ledger_interval", std::int64_t(r.ledger_interval))
          .field("residual_interval", std::int64_t(r.residual_interval))
          .field("steps", r.steps)
          .field("probes", r.probes)
          .field("alerts", r.alerts)
          .field("nan_cells", r.nan_cells)
          .field("probe_s", r.probe_s)
          .field("step_s", r.step_s)
          .field("overhead_frac", r.overhead_frac)
          .field("energy_drift_ok", std::int64_t(r.energy_drift_ok ? 1 : 0))
          .field("continuity_ok", std::int64_t(r.continuity_ok ? 1 : 0))
          .end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
