// Cost of the in-situ physics diagnostics (paper Figs. 6/7 are built from
// exactly these reduced quantities, computed in situ because the full
// particle/field dumps would dwarf the simulation itself): run a uniform
// thermal plasma under a sweep of reduced-diagnostic cadences — every-step
// probing, the default cadences, defaults plus the streaming exporter,
// sparse sampling, and fully off — and report the insitu seconds against
// the step seconds, plus the record/frame/byte counts so the gate notices
// if a cadence ever stops producing its telemetry.
//
// The insitu/step second columns are host timing (noise) and are --ignore'd
// by the bench_smoke comparison; record counts, stream frame/byte counts
// and the series/emittance verdicts are deterministic and gated against
// BENCH_insitu.json.
//
// Run: ./bench_insitu [--json] [--steps N] [--outdir DIR]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/diag/output_dir.hpp"
#include "src/insitu/registry.hpp"
#include "src/obs/json.hpp"

using namespace mrpic;

namespace {

struct CadenceRecord {
  int reduced_interval;   // moments / laser / wakefield / field-energy cadence
  int spectrum_interval;
  int stream_interval;    // 0 = exporter off
  std::int64_t steps;
  std::int64_t records;
  std::int64_t stream_frames;
  std::int64_t stream_bytes;
  double insitu_s;
  double step_s;
  double overhead_frac;
  bool series_ok;   // JSONL series round-trips through validate_series
  bool beam_ok;     // latest beam record has finite emittance + full count
};

core::SimulationConfig<2> plasma_config(int n) {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(n - 1, n - 1));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(n / 2);
  cfg.shape_order = 2;
  return cfg;
}

CadenceRecord run_cadence(int reduced, int spectrum, int stream, int steps,
                          const diag::OutputDir& out) {
  core::Simulation<2> sim(plasma_config(32));
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim.add_species(particles::Species::electron(), inj);

  insitu::InsituConfig icfg;
  icfg.moments_interval = reduced;
  icfg.laser_interval = reduced;
  icfg.wakefield_interval = reduced;
  icfg.field_energy_interval = reduced;
  icfg.spectrum_interval = spectrum;
  icfg.beam_species = 0;
  icfg.beam_e_min_J = 0;                 // the thermal bulk IS the "beam" here
  icfg.spectrum_e_min_J = 0;
  icfg.spectrum_e_max_J = 1.602e-16;     // 0..1 keV covers a 50 eV plasma
  icfg.spectrum_bins = 64;
  icfg.laser_wavelength = 0.8e-6;        // no antenna; probes field noise
  // Not BENCH_-prefixed: the smoke gate globs BENCH_*.json for its schema
  // pass and these per-cadence artifacts are not bench outputs.
  char label[64];
  std::snprintf(label, sizeof(label), "insitu_run_%d_%d_%d", reduced, spectrum, stream);
  icfg.series_path = out.path(std::string(label) + ".jsonl");
  icfg.stream_interval = stream;
  icfg.stream_downsample = 4;
  icfg.stream_components = {0, 1};
  icfg.phase_space.ax = diag::Axis::Energy;
  icfg.phase_space.ay = diag::Axis::Ux;
  icfg.phase_space.a_min = 0;
  icfg.phase_space.a_max = 1.602e-16;
  icfg.phase_space.b_min = -1e7;
  icfg.phase_space.b_max = 1e7;
  icfg.phase_space.na = 32;
  icfg.phase_space.nb = 32;
  icfg.stream.basename = out.path(label);
  sim.enable_insitu(icfg);
  sim.init();
  sim.run(steps);

  CadenceRecord r{};
  r.reduced_interval = reduced;
  r.spectrum_interval = spectrum;
  r.stream_interval = stream;
  r.steps = steps;
  r.records = sim.insitu()->num_records();
  if (const auto* sw = sim.insitu_stream()) {
    r.stream_frames = static_cast<std::int64_t>(sw->frames_written());
    r.stream_bytes = static_cast<std::int64_t>(sw->bytes_written());
  }
  r.series_ok = insitu::Registry::validate_series(icfg.series_path).empty();
  // Every reduced cadence that ran must see the whole plasma with a finite
  // normalized emittance; cadence 0 vacuously passes (nothing probed).
  const auto* beam = sim.insitu()->last("beam");
  r.beam_ok = beam == nullptr ||
              (beam->value("count") > 0 && std::isfinite(beam->value("emit_ny_m_rad")));

  for (const auto& [name, stats] : sim.profiler().flat_totals()) {
    if (name == "insitu") { r.insitu_s = stats.inclusive_s; }
    if (name == "step") { r.step_s = stats.inclusive_s; }
  }
  r.overhead_frac = r.step_s > 0 ? r.insitu_s / r.step_s : 0;
  return r;
}

} // namespace

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  int steps = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    }
  }

  // The sweep: every-step reductions (worst case), the default cadences,
  // defaults plus the streaming exporter, sparse sampling, then off.
  struct Point {
    int reduced, spectrum, stream;
  };
  const std::vector<Point> sweep = {
      {1, 1, 0}, {10, 50, 0}, {10, 50, 20}, {50, 0, 0}, {0, 0, 0}};

  std::printf("insitu-diagnostics overhead vs cadence (%d steps, 32^2 thermal plasma)\n\n",
              steps);
  std::printf("  %-26s %7s %7s %10s %9s %9s %9s %6s %6s\n", "cadence", "records",
              "frames", "bytes", "insitu_s", "step_s", "overhead", "series", "beam");
  std::vector<CadenceRecord> records;
  for (const auto& p : sweep) {
    auto r = run_cadence(p.reduced, p.spectrum, p.stream, steps, out);
    char label[64];
    std::snprintf(label, sizeof(label), "red=%d spec=%d stream=%d", p.reduced,
                  p.spectrum, p.stream);
    std::printf("  %-26s %7lld %7lld %10lld %9.4f %9.4f %8.2f%% %6s %6s\n", label,
                static_cast<long long>(r.records),
                static_cast<long long>(r.stream_frames),
                static_cast<long long>(r.stream_bytes), r.insitu_s, r.step_s,
                100 * r.overhead_frac, r.series_ok ? "ok" : "FAIL",
                r.beam_ok ? "ok" : "FAIL");
    records.push_back(r);
  }

  if (json_out) {
    const std::string json_path = out.path("BENCH_insitu.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "insitu");
    w.begin_array("cadence");
    for (const auto& r : records) {
      w.begin_object()
          .field("reduced_interval", std::int64_t(r.reduced_interval))
          .field("spectrum_interval", std::int64_t(r.spectrum_interval))
          .field("stream_interval", std::int64_t(r.stream_interval))
          .field("steps", r.steps)
          .field("records", r.records)
          .field("stream_frames", r.stream_frames)
          .field("stream_bytes", r.stream_bytes)
          .field("insitu_s", r.insitu_s)
          .field("step_s", r.step_s)
          .field("overhead_frac", r.overhead_frac)
          .field("series_ok", std::int64_t(r.series_ok ? 1 : 0))
          .field("beam_ok", std::int64_t(r.beam_ok ? 1 : 0))
          .end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
