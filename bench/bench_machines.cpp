// Table II reproduction: machines used in the study, central computing
// hardware, vendor-specified peak TFlop/s and TByte/s per device, and
// published 2021/11 HPCG results, printed from the machine catalogue that
// drives every performance model in this repository.

#include <cstdio>

#include "src/perf/machine.hpp"

int main() {
  std::printf("Table II: Machines used in this study\n");
  std::printf("%-11s %-18s %12s %12s %12s %10s %8s\n", "Machine", "Compute HW",
              "DP TFlop/s", "SP TFlop/s", "TByte/s/dev", "HPCG PF/s", "nodes");
  std::printf("%.*s\n", 92,
              "--------------------------------------------------------------------------"
              "------------------");
  for (const auto& m : mrpic::perf::catalogue()) {
    char hpcg[32];
    if (m.hpcg_pflops > 0) {
      std::snprintf(hpcg, sizeof(hpcg), "%.2f", m.hpcg_pflops);
    } else {
      std::snprintf(hpcg, sizeof(hpcg), "n/a");
    }
    std::printf("%-11s %-18s %12.2f %12.2f %12.1f %10s %8d\n", m.name.c_str(),
                m.device.c_str(), m.dp_tflops_device, m.sp_tflops_device, m.tbyte_s_device,
                hpcg, m.total_nodes);
  }
  std::printf(
      "\npaper values (Table II): Frontier MI250X 47.9/95.7 TF 3.3 TB/s; Fugaku A64FX\n"
      "3.38/6.76 TF 1.0 TB/s HPCG 16.0 PF; Summit V100 7.5/15 TF 0.9 TB/s HPCG 2.93 PF;\n"
      "Perlmutter A100 9.7/19.5 TF 1.6 TB/s HPCG 1.91 PF.\n");
  return 0;
}
