// Fig. 5 (left) reproduction: weak-scaling efficiency of uniform-plasma runs
// on Frontier, Fugaku, Summit and Perlmutter over the paper's measured node
// ranges. Two independent sources are printed:
//
//  1. The calibrated analytic model (src/perf/scaling_model.hpp): the
//     1 + a*g(N) + b*log2(N) cost shape solved through each machine's two
//     paper-reported anchor efficiencies — this regenerates the full curve.
//  2. The simulated cluster (src/cluster): actual halo-exchange message
//     sizes/counts of the decomposed uniform-plasma BoxArray under each
//     machine's latency/bandwidth, for the mechanistic small-scale trend
//     (one box per rank, fixed per-rank work).
//
// Paper endpoints: Frontier 80% @ 8576, Fugaku 84% @ 152064, Summit 74% @
// 4263 (with a 15% dip by 8 nodes), Perlmutter 62% @ 1088.

// With --json, additionally writes BENCH_weak_scaling.json: the model
// efficiencies per machine per node count, plus per-node-count simulated
// cluster records (compute_s, comm_s, total_s, bytes, messages) — the
// machine-readable perf trajectory consumed by later PRs (EXPERIMENTS.md).
//
// With --attribution, runs obs::analysis over the recorded sweep and writes
// BENCH_attribution.json (bench kind "attribution": per-point scaling-loss
// decomposition whose terms sum to 1 - efficiency exactly, plus the
// per-point critical path) and attribution_report.md.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "src/cluster/sim_cluster.hpp"
#include "src/diag/output_dir.hpp"
#include "src/obs/json.hpp"
#include "src/obs/perf_report.hpp"
#include "src/obs/rank_recorder.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/scaling_model.hpp"

using namespace mrpic;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  bool attribution = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--attribution") == 0) { attribution = true; }
  }

  std::printf("Fig. 5 (left): weak scaling efficiency [%%], model calibrated on the\n");
  std::printf("paper's anchors (marked *)\n\n");

  const std::vector<double> nodes = {1,   2,    4,    8,    16,   32,   64,   128,
                                     256, 512,  1024, 2048, 4096, 8192, 16384, 65536,
                                     152064};
  std::printf("%8s", "nodes");
  for (const auto& m : perf::catalogue()) { std::printf("%12s", m.name.c_str()); }
  std::printf("\n");
  for (double n : nodes) {
    std::printf("%8.0f", n);
    for (const auto& m : perf::catalogue()) {
      if (n > m.nodes_available) {
        std::printf("%12s", "-");
        continue;
      }
      const auto model = perf::WeakScalingModel::for_machine(m);
      const bool anchor = n == m.weak.nodes_early || n == m.weak.nodes_full;
      std::printf("%11.1f%s", 100 * model.efficiency(n), anchor ? "*" : " ");
    }
    std::printf("\n");
  }
  // Full-machine row per machine.
  std::printf("%8s", "full");
  for (const auto& m : perf::catalogue()) {
    const auto model = perf::WeakScalingModel::for_machine(m);
    std::printf("%11.1f%s", 100 * model.efficiency(m.weak.nodes_full),
                true ? "*" : " ");
  }
  std::printf("\npaper:  Frontier 80.0*   Fugaku 84.0*   Summit 74.0*   Perlmutter 62.0*\n");

  // Mechanistic check with the simulated cluster: per-rank halo time grows
  // as the decomposition acquires interior ranks, then saturates — the
  // Summit 2->8 node effect.
  std::printf("\nsimulated cluster (3D uniform plasma, one 64^3 box per rank,\n");
  std::printf("Summit network parameters): relative step time vs ranks\n");
  const auto& summit = perf::machine_by_name("Summit");
  cluster::CommModel cm;
  cm.latency_s = summit.net_latency_s;
  cm.bandwidth_Bps = summit.net_bandwidth_Bps;
  double t1 = 0;
  struct ClusterRecord {
    int nranks;
    cluster::StepCost cost;
    double efficiency;
  };
  std::vector<ClusterRecord> cluster_records;
  // Per-rank breakdown + message log of each sweep point, exported as a
  // heatmap CSV (one "step" per rank count) alongside the JSON.
  obs::RankRecorder recorder(64);
  int sweep_point = 0;
  for (int rpd : {1, 2, 3, 4}) { // ranks per dimension
    const int nranks = rpd * rpd * rpd;
    const Box3 domain(IntVect3(0, 0, 0), IntVect3(64 * rpd - 1, 64 * rpd - 1, 64 * rpd - 1));
    const auto ba = BoxArray<3>::decompose(domain, 64);
    const auto dm = dist::DistributionMapping::make(ba, nranks,
                                                    dist::Strategy::SpaceFillingCurve);
    cluster::SimCluster cl(nranks, cm);
    // Fixed compute per box (memory-bound estimate for 64^3 cells + 1 ppc).
    perf::StepTimeModel st;
    // One 64^3 box on one device: node_seconds is per full node, so scale
    // back up by devices per node.
    const double comp = st.node_seconds(summit, 64.0 * 64 * 64, 64.0 * 64 * 64) *
                        summit.devices_per_node;
    recorder.set_step(sweep_point++);
    const auto cost =
        cl.step_cost(ba, dm, std::vector<Real>(ba.size(), comp), 9, 4, 8, &recorder);
    if (rpd == 1) { t1 = cost.total_s; }
    cluster_records.push_back({nranks, cost, t1 / cost.total_s});
    std::printf("  %4d ranks: %.4f s/step  efficiency %5.1f %%  (%lld inter-rank msgs)\n",
                nranks, cost.total_s, 100 * t1 / cost.total_s,
                static_cast<long long>(cost.num_messages));
  }

  if (json_out) {
    const std::string json_path = out.path("BENCH_weak_scaling.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "weak_scaling");
    w.begin_array("model");
    for (const auto& m : perf::catalogue()) {
      const auto model = perf::WeakScalingModel::for_machine(m);
      for (double n : nodes) {
        if (n > m.nodes_available) { continue; }
        w.begin_object()
            .field("machine", m.name)
            .field("nodes", n)
            .field("efficiency", model.efficiency(n))
            .field("anchor", n == m.weak.nodes_early || n == m.weak.nodes_full)
            .end_object();
      }
    }
    w.end_array();
    w.begin_array("simulated_cluster");
    for (const auto& r : cluster_records) {
      w.begin_object()
          .field("nodes", std::int64_t(r.nranks))
          .field("compute_s", r.cost.compute_s)
          .field("comm_s", r.cost.comm_s)
          .field("total_s", r.cost.total_s)
          .field("imbalance", r.cost.imbalance)
          .field("bytes", r.cost.total_bytes)
          .field("messages", r.cost.num_messages)
          .field("efficiency", r.efficiency)
          .end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    const std::string heatmap_path = out.path("weak_scaling_rank_heatmap.csv");
    recorder.write_rank_heatmap_csv(heatmap_path);
    std::printf("\nwrote %s and %s\n", json_path.c_str(), heatmap_path.c_str());
  }

  if (attribution) {
    obs::PerfReportOptions opt;
    opt.title = "weak-scaling attribution (Summit network, one 64^3 box per rank)";
    opt.latency_s = cm.latency_s;
    auto report = obs::build_perf_report(recorder, opt);
    // Weak scaling: the perfectly-scaled step time is the 1-rank total, so
    // each point's loss terms account for its full efficiency drop.
    for (const auto& step : recorder.steps()) {
      report.scaling_losses.push_back(
          obs::analysis::decompose_loss(step, cm.latency_s, t1));
    }
    const std::string json_path = out.path("BENCH_attribution.json");
    const std::string md_path = out.path("attribution_report.md");
    obs::write_json(report, json_path);
    obs::write_markdown(report, md_path);
    std::printf("\nattribution: loss terms per node count (sum == loss exactly)\n");
    for (const auto& t : report.scaling_losses) {
      std::printf("  %4.0f ranks: eff %5.1f %%  imbalance %5.2f %%  comm %5.2f %%  "
                  "latency %5.2f %%  resil %5.2f %%  gap %.1e\n",
                  t.nodes, 100 * t.efficiency, 100 * t.imbalance, 100 * t.comm,
                  100 * t.latency, 100 * t.resil, t.invariant_gap());
    }
    std::printf("wrote %s and %s\n", json_path.c_str(), md_path.c_str());
  }
  return 0;
}
