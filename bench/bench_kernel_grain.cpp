// Kernel-grain observability bench (ROADMAP item 2's measuring stick): four
// record families, three of them pure model arithmetic and baseline-gated,
// one host timing and --ignore'd by bench_smoke:
//
//  - kernels[]:  per-kind probe aggregates from a thermal-plasma run with
//                kernel obs at the default cadence. Invocation/particle
//                counts and the analytic flops/bytes/intensity columns are
//                deterministic; time/bandwidth/attainment are host timing.
//  - locality[]: the cell-key locality model on synthetic key streams
//                (sorted, LCG-shuffled, reversed, strided) — pure
//                arithmetic, including the predicted cell-binned-sort
//                speedup.
//  - overlap[]:  the halo phase timeline (post/wait/interior/headroom) of
//                SimCluster::step_cost over a rank sweep — pure model
//                arithmetic, with the post+wait == comm split verdict as a
//                gated 0/1 flag.
//  - probe[]:    the <= 1% probe-overhead acceptance gate: overhead_frac is
//                host timing (ignored), the overhead_ok 0/1 verdict is
//                gated.
//
// Run: ./bench_kernel_grain [--json] [--steps N] [--outdir DIR]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/cluster/sim_cluster.hpp"
#include "src/core/simulation.hpp"
#include "src/diag/output_dir.hpp"
#include "src/dist/distribution_mapping.hpp"
#include "src/obs/json.hpp"
#include "src/obs/kernel_probe.hpp"
#include "src/obs/locality.hpp"

using namespace mrpic;

namespace {

std::unique_ptr<core::Simulation<2>> make_sim(int n) {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(n - 1, n - 1));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(n / 2);
  cfg.shape_order = 2;
  auto sim = std::make_unique<core::Simulation<2>>(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(5e23);
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 50.0;
  sim->add_species(particles::Species::electron(), inj);
  return sim;
}

// Synthetic cell-key streams for the locality model: every case is exactly
// reproducible (fixed LCG), so all columns diff at tight tolerance.
std::vector<std::int64_t> make_keys(const std::string& kind, std::int64_t n) {
  std::vector<std::int64_t> keys(static_cast<std::size_t>(n));
  std::iota(keys.begin(), keys.end(), std::int64_t(0));
  if (kind == "reversed") {
    std::reverse(keys.begin(), keys.end());
  } else if (kind == "strided") {
    // Interleave two halves: stride n/2 on every other pair.
    std::vector<std::int64_t> s;
    s.reserve(keys.size());
    for (std::int64_t i = 0; i < n / 2; ++i) {
      s.push_back(i);
      s.push_back(i + n / 2);
    }
    keys = std::move(s);
  } else if (kind == "shuffled") {
    std::uint64_t state = 88172645463325252ull;
    for (std::size_t i = keys.size() - 1; i > 0; --i) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      std::swap(keys[i], keys[state % (i + 1)]);
    }
  }
  return keys;
}

} // namespace

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  int steps = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    }
  }

  // --- kernels + probe: thermal plasma with the probe at default cadence --
  // 64x64 so the overhead gate measures the probe against a realistic step
  // cost (a 32x32 step is so cheap the fixed locality-sample cost dominates).
  auto sim = make_sim(64);
  obs::KernelObsConfig kcfg; // interval 5, Summit roofline
  sim->enable_kernel_obs(kcfg);
  sim->init();
  sim->run(steps);

  const obs::KernelProbe& probe = *sim->kernel_probe();
  const auto aggs = probe.aggregates();
  std::printf("kernel-grain probe: %d steps at cadence %d (thermal plasma 64x64)\n\n",
              steps, kcfg.sample_interval);
  std::printf("  %-8s %6s %10s %12s %12s %7s %8s\n", "kernel", "invoc", "particles",
              "flops", "bytes", "intens", "GB/s");
  for (int i = 0; i < obs::kNumKernelKinds; ++i) {
    const auto& a = aggs[std::size_t(i)];
    std::printf("  %-8s %6lld %10lld %12.4g %12.4g %7.3f %8.2f\n",
                obs::kernel_kind_name(static_cast<obs::KernelKind>(i)),
                static_cast<long long>(a.invocations),
                static_cast<long long>(a.particles), a.flops, a.bytes, a.intensity(),
                a.gbyte_s());
  }

  double probe_s = probe.self_time_s(), step_s = 0;
  for (const auto& [rname, stats] : sim->profiler().flat_totals()) {
    if (rname == "kernel_obs") { probe_s += stats.inclusive_s; }
    if (rname == "step") { step_s = stats.inclusive_s; }
  }
  const double overhead_frac = step_s > 0 ? probe_s / step_s : 0;
  const bool overhead_ok = overhead_frac <= 0.01;
  std::printf("\n  probe %.3g s of %.3g s stepped (%.3f%%) -> %s\n", probe_s, step_s,
              100 * overhead_frac, overhead_ok ? "ok" : "FAIL");

  // --- locality model on synthetic key streams --------------------------
  const std::int64_t nkeys = 4096;
  const std::vector<std::string> cases = {"sorted", "shuffled", "reversed", "strided"};
  std::vector<obs::TileLocality> locs;
  std::printf("\n  %-9s %8s %7s %7s %7s %7s %8s\n", "keys", "invfrac", "stride",
              "p99", "reuse", "sorted", "speedup");
  for (const auto& kind : cases) {
    const auto l = obs::locality_from_keys(make_keys(kind, nkeys));
    std::printf("  %-9s %8.4f %7.1f %7.0f %7.3f %7.3f %7.2fx\n", kind.c_str(),
                l.inversion_fraction, l.mean_stride_cells, l.p99_stride_cells,
                l.line_reuse, l.sorted_line_reuse, l.predicted_sort_speedup);
    locs.push_back(l);
  }

  // --- halo phase timeline over a rank sweep ----------------------------
  struct OverlapRecord {
    int nranks;
    cluster::StepCost cost;
    bool split_ok;
  };
  std::vector<OverlapRecord> overlaps;
  std::printf("\n  %6s %10s %10s %10s %10s %12s\n", "ranks", "comm_s", "post_s",
              "wait_s", "interior_s", "headroom_s");
  for (int nranks : {2, 4, 8}) {
    const Box2 domain(IntVect2(0, 0), IntVect2(63, 63));
    const auto ba = BoxArray<2>::decompose(domain, 16);
    const auto dm =
        dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
    cluster::SimCluster cl(nranks);
    const auto cost = cl.step_cost(ba, dm, std::vector<Real>(ba.size(), Real(1e-4)), 9, 2);
    const bool split_ok = std::abs(cost.post_s + cost.wait_s - cost.comm_s) <= 1e-12;
    std::printf("  %6d %10.3g %10.3g %10.3g %10.3g %12.3g\n", nranks, cost.comm_s,
                cost.post_s, cost.wait_s, cost.interior_compute_s,
                cost.overlap_headroom_s);
    overlaps.push_back({nranks, cost, split_ok});
  }

  if (json_out) {
    const std::string json_path = out.path("BENCH_kernel_grain.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "kernel_grain");
    w.begin_array("kernels");
    for (int i = 0; i < obs::kNumKernelKinds; ++i) {
      const auto& a = aggs[std::size_t(i)];
      w.begin_object()
          .field("kernel", obs::kernel_kind_name(static_cast<obs::KernelKind>(i)))
          .field("invocations", a.invocations)
          .field("particles", a.particles)
          .field("flops", a.flops)
          .field("bytes", a.bytes)
          .field("intensity", a.intensity())
          .field("time_s", a.time_s)
          .field("gbyte_s", a.gbyte_s())
          .end_object();
    }
    w.end_array();
    w.begin_array("locality");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const auto& l = locs[i];
      w.begin_object()
          .field("case", cases[i])
          .field("particles", l.particles)
          .field("pairs", l.pairs)
          .field("inversion_fraction", l.inversion_fraction)
          .field("mean_stride_cells", l.mean_stride_cells)
          .field("p99_stride_cells", l.p99_stride_cells)
          .field("line_reuse", l.line_reuse)
          .field("sorted_line_reuse", l.sorted_line_reuse)
          .field("predicted_sort_speedup", l.predicted_sort_speedup)
          .end_object();
    }
    w.end_array();
    w.begin_array("overlap");
    for (const auto& o : overlaps) {
      w.begin_object()
          .field("nranks", std::int64_t(o.nranks))
          .field("compute_s", o.cost.compute_s)
          .field("comm_s", o.cost.comm_s)
          .field("post_s", o.cost.post_s)
          .field("wait_s", o.cost.wait_s)
          .field("interior_compute_s", o.cost.interior_compute_s)
          .field("overlap_headroom_s", o.cost.overlap_headroom_s)
          .field("split_ok", std::int64_t(o.split_ok ? 1 : 0))
          .end_object();
    }
    w.end_array();
    w.begin_array("probe");
    w.begin_object()
        .field("steps", std::int64_t(steps))
        .field("sample_interval", std::int64_t(kcfg.sample_interval))
        .field("sampled_invocations",
               std::int64_t(aggs[0].invocations + aggs[1].invocations +
                             aggs[2].invocations))
        .field("probe_s", probe_s)
        .field("step_s", step_s)
        .field("overhead_frac", overhead_frac)
        .field("overhead_ok", std::int64_t(overhead_ok ? 1 : 0))
        .end_object();
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return overhead_ok ? 0 : 1;
}
