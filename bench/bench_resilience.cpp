// Resilience economics at paper scale: what fraction of a campaign is spent
// on checkpoints + lost work (the Young/Daly overhead curve, Sec. "routine
// practice at 152k nodes"), and how long a crash costs end-to-end (detect ->
// restore -> replay) as a function of the checkpoint cadence.
//
// Both sections are pure model arithmetic over the simulated cluster — no
// host timing — so the JSON output is deterministic and gated at tight
// tolerance by bench_smoke against bench/baselines/BENCH_resilience.json.
//
// Run: ./bench_resilience [--json] [--outdir DIR]
// With --json, writes BENCH_resilience.json:
//   overhead: per (checkpoint cost C, MTBF M) scenario, the overhead
//             fraction C/T + T/(2M) over an interval sweep around the Young
//             optimum, plus the Young and Daly optima themselves.
//   recovery: per (checkpoint interval, crash step), the modeled time to
//             recover — heartbeat detection + checkpoint restore + replay of
//             the rolled-back steps on the shrunken (re-mapped) cluster.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/cluster/sim_cluster.hpp"
#include "src/diag/output_dir.hpp"
#include "src/obs/json.hpp"
#include "src/resil/checkpoint_policy.hpp"
#include "src/resil/failure_detector.hpp"
#include "src/resil/recovery.hpp"

using namespace mrpic;

namespace {

struct OverheadRecord {
  std::string scenario;
  double checkpoint_cost_s;
  double mtbf_s;
  double interval_s;
  double overhead_fraction;
};

struct RecoveryRecord {
  int interval_steps;
  int crash_step;
  int rollback_steps;
  double step_s;          // modeled seconds per step on the shrunken cluster
  double detection_s;
  double restore_s;
  double replay_s;
  double recovery_s;
  double imbalance_before;
  double imbalance_after;
};

} // namespace

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  bool json_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) { json_out = true; }
  }

  // --- overhead-vs-interval curves ---------------------------------------
  // Scenarios bracket the paper's reality: a full-machine Frontier campaign
  // checkpoints hundreds of GB (minutes of I/O) against an MTBF of a few
  // hours; a small allocation is cheap to checkpoint and rarely fails.
  struct Scenario {
    const char* name;
    double cost_s, mtbf_s;
  };
  const std::vector<Scenario> scenarios = {
      {"full_machine", 240.0, 4 * 3600.0},
      {"mid_scale", 30.0, 24 * 3600.0},
      {"small_job", 2.0, 7 * 24 * 3600.0},
  };
  const std::vector<double> sweep = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

  std::vector<OverheadRecord> overhead;
  std::printf("checkpoint overhead fraction: C/T + T/(2M)\n\n");
  for (const auto& sc : scenarios) {
    resil::CheckpointPolicyConfig young_cfg;
    young_cfg.mode = resil::CheckpointMode::Young;
    young_cfg.checkpoint_cost_s = sc.cost_s;
    young_cfg.mtbf_s = sc.mtbf_s;
    const double t_young = resil::CheckpointPolicy(young_cfg).optimal_interval_s();
    young_cfg.mode = resil::CheckpointMode::Daly;
    const double t_daly = resil::CheckpointPolicy(young_cfg).optimal_interval_s();

    std::printf("%-14s C = %5.0f s, M = %6.0f s: Young T* = %7.0f s, Daly T* = %7.0f s\n",
                sc.name, sc.cost_s, sc.mtbf_s, t_young, t_daly);
    for (double f : sweep) {
      const double t = f * t_young;
      const double o = resil::checkpoint_overhead_fraction(t, sc.cost_s, sc.mtbf_s);
      overhead.push_back({sc.name, sc.cost_s, sc.mtbf_s, t, o});
      std::printf("    T = %8.0f s (%5.3fx T*): overhead %6.2f %%%s\n", t, f, 100 * o,
                  f == 1.0 ? "  <- Young optimum" : "");
    }
    overhead.push_back({std::string(sc.name) + "_daly", sc.cost_s, sc.mtbf_s, t_daly,
                        resil::checkpoint_overhead_fraction(t_daly, sc.cost_s, sc.mtbf_s)});
  }

  // --- time-to-recovery curves -------------------------------------------
  // A 2D LWFA-like decomposition: 64 boxes over 8 ranks, rank 3 dies. The
  // replay runs on the shrunken 7-rank cluster under the post-failure
  // re-mapping (survivors keep their boxes, orphans LPT re-homed).
  const auto ba = mrpic::BoxArray<2>::decompose(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(255, 127)), 32); // 8x4 boxes
  const int nranks = 8;
  const int dead_rank = 3;
  const auto dm =
      dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
  // Unit-ish per-box compute with a hot band (the wakefield bubble).
  std::vector<Real> costs(static_cast<std::size_t>(ba.size()), Real(1e-3));
  for (int b = ba.size() / 3; b < 2 * ba.size() / 3; ++b) { costs[b] = Real(3e-3); }

  const auto remap = resil::remap_after_failure(dm, costs, dead_rank);
  cluster::SimCluster shrunk(nranks - 1);
  const auto step = shrunk.step_cost(ba, remap.mapping, costs, 6, 2);

  resil::DetectorConfig det;
  const double detection_s = resil::FailureDetector(det).detection_time_s();
  // Restore cost model: re-reading the checkpoint is the same I/O volume as
  // writing it; use a per-cell cost so it tracks the problem size.
  const double restore_s = 1e-8 * static_cast<double>(ba.total_cells());

  std::printf("\ntime to recovery (8 -> 7 ranks, %d boxes, step %.4f s):\n",
              ba.size(), step.total_s);
  std::printf("  remap: %d boxes re-homed, imbalance %.3f -> %.3f\n\n",
              remap.boxes_moved, remap.imbalance_before, remap.imbalance_after);

  std::vector<RecoveryRecord> recovery;
  for (int interval : {5, 10, 20, 40}) {
    for (int crash : {17, 33}) {
      // Checkpoints land on step-count multiples of the interval; the crash
      // at step `crash` rolls back to the last one at or below it.
      const int last_ckpt = (crash / interval) * interval;
      const int rollback = crash + 1 - last_ckpt;
      const double replay_s = rollback * step.total_s;
      const double recovery_s = detection_s + restore_s + replay_s;
      recovery.push_back({interval, crash, rollback, step.total_s, detection_s,
                          restore_s, replay_s, recovery_s, remap.imbalance_before,
                          remap.imbalance_after});
      std::printf("  interval %2d, crash @ %2d: roll back %2d steps, recover in %.4f s "
                  "(detect %.4f + restore %.4f + replay %.4f)\n",
                  interval, crash, rollback, recovery_s, detection_s, restore_s,
                  replay_s);
    }
  }

  if (json_out) {
    const std::string json_path = out.path("BENCH_resilience.json");
    std::ofstream os(json_path);
    obs::json::Writer w(os);
    w.begin_object();
    w.field("bench", "resilience");
    w.begin_array("overhead");
    for (const auto& r : overhead) {
      w.begin_object()
          .field("scenario", r.scenario)
          .field("checkpoint_cost_s", r.checkpoint_cost_s)
          .field("mtbf_s", r.mtbf_s)
          .field("interval_s", r.interval_s)
          .field("overhead_fraction", r.overhead_fraction)
          .end_object();
    }
    w.end_array();
    w.begin_array("recovery");
    for (const auto& r : recovery) {
      w.begin_object()
          .field("interval_steps", std::int64_t(r.interval_steps))
          .field("crash_step", std::int64_t(r.crash_step))
          .field("rollback_steps", std::int64_t(r.rollback_steps))
          .field("step_s", r.step_s)
          .field("detection_s", r.detection_s)
          .field("restore_s", r.restore_s)
          .field("replay_s", r.replay_s)
          .field("recovery_s", r.recovery_s)
          .field("imbalance_before", r.imbalance_before)
          .field("imbalance_after", r.imbalance_after)
          .end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
